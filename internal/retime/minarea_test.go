package retime

import (
	"math/rand"
	"testing"

	"seqver/internal/netlist"
	"seqver/internal/sim"
)

// Local aliases keep the test bodies compact.
type netlistCircuit = netlist.Circuit

var newCircuit = netlist.New

const (
	opNot = netlist.OpNot
	opAnd = netlist.OpAnd
	opBuf = netlist.OpBuf
)

func TestWDMatricesChain(t *testing.T) {
	// chain4: src -> g1..g4 -> (2 latches) -> sink.
	g, err := buildGraph(chain4())
	if err != nil {
		t.Fatal(err)
	}
	W, D := g.wdMatrices()
	v1 := g.vertOf[chain4().MustLookup("g1")] // same indices: deterministic build
	v4 := g.vertOf[chain4().MustLookup("g4")]
	if W[v1][v4] != 0 {
		t.Fatalf("W(g1,g4) = %d, want 0", W[v1][v4])
	}
	if D[v1][v4] != 4 {
		t.Fatalf("D(g1,g4) = %d, want 4 (four unit-delay gates)", D[v1][v4])
	}
	// From g4 the path to the sink crosses both latches.
	if W[v4][sinkVertex] != 2 {
		t.Fatalf("W(g4,sink) = %d, want 2", W[v4][sinkVertex])
	}
}

func TestWDMatricesPicksMaxDelayAmongMinWeight(t *testing.T) {
	// Two parallel zero-latch paths of different depth: D must be the
	// deeper one.
	c := chainWithParallelPaths()
	g, err := buildGraph(c)
	if err != nil {
		t.Fatal(err)
	}
	W, D := g.wdMatrices()
	u := g.vertOf[c.MustLookup("head")]
	v := g.vertOf[c.MustLookup("join")]
	if W[u][v] != 0 {
		t.Fatalf("W = %d", W[u][v])
	}
	// head + a + b + join = 4 units on the deep path, vs head+s+join = 3.
	if D[u][v] != 4 {
		t.Fatalf("D = %d, want 4", D[u][v])
	}
}

func chainWithParallelPaths() *netlistCircuit {
	c := newCircuit("par")
	in := c.AddInput("in")
	head := c.AddGate("head", opNot, in)
	a := c.AddGate("a", opNot, head)
	b := c.AddGate("b", opNot, a)
	s := c.AddGate("s", opNot, head)
	join := c.AddGate("join", opAnd, b, s)
	c.AddOutput("o", join)
	return c
}

func TestExactMinAreaMatchesOrBeatsHillClimb(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 30; trial++ {
		c := randomSequential(rng)
		g, err := buildGraph(c)
		if err != nil {
			t.Fatal(err)
		}
		p0 := g.clockPeriod(make([]int, len(g.gateOf)))
		if p0 <= 0 {
			continue
		}
		period := p0 // the original period is always feasible
		r0 := g.feas(period)
		if r0 == nil {
			t.Fatalf("trial %d: original period infeasible?!", trial)
		}
		hc := g.reduceArea(r0, period)
		exact := g.exactMinArea(period)
		if exact == nil {
			t.Fatalf("trial %d: exact LP failed on a feasible period", trial)
		}
		if !g.legal(exact) {
			t.Fatalf("trial %d: exact labeling illegal", trial)
		}
		if cp := g.clockPeriod(exact); cp < 0 || cp > period {
			t.Fatalf("trial %d: exact labeling period %d > %d", trial, cp, period)
		}
		if g.latchCost(exact) > g.latchCost(hc) {
			t.Fatalf("trial %d: exact cost %d worse than hill-climb %d",
				trial, g.latchCost(exact), g.latchCost(hc))
		}
	}
}

func TestExactMinAreaEndToEndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 15; trial++ {
		c := randomSequential(rng)
		p, err := Period(c)
		if err != nil || p == 0 {
			continue
		}
		res, err := ConstrainedMinArea(c, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eq, witness := sim.HistoryEquivalent(c, res.Circuit, 10, 8, rng)
		if !eq {
			t.Fatalf("trial %d: min-area retiming broke behaviour; witness %v", trial, witness)
		}
		if got, _ := Period(res.Circuit); got > p {
			t.Fatalf("trial %d: period bound violated: %d > %d", trial, got, p)
		}
	}
}

func TestExactMinAreaSharing(t *testing.T) {
	// The fanout-sharing case from TestFanoutSharing must be optimal
	// under the LP as well: a single shared latch.
	c := newCircuit("share")
	a := c.AddInput("a")
	g := c.AddGate("g", opNot, a)
	l1 := c.AddLatch("l1", g)
	l2 := c.AddLatch("l2", g)
	o1 := c.AddGate("o1", opBuf, l1)
	o2 := c.AddGate("o2", opBuf, l2)
	c.AddOutput("x", o1)
	c.AddOutput("y", o2)
	gr, err := buildGraph(c)
	if err != nil {
		t.Fatal(err)
	}
	r := gr.exactMinArea(2)
	if r == nil {
		t.Fatal("LP failed")
	}
	if cost := gr.latchCost(r); cost != 1 {
		t.Fatalf("shared cost = %d, want 1", cost)
	}
}

func TestExactThresholdFallback(t *testing.T) {
	old := ExactMinAreaThreshold
	ExactMinAreaThreshold = 1 // force fallback
	defer func() { ExactMinAreaThreshold = old }()
	c := chain4()
	res, err := ConstrainedMinArea(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latches > 2 {
		t.Fatalf("fallback produced %d latches", res.Latches)
	}
}

// TestWDMatricesAgainstBruteForce validates W/D against exhaustive path
// enumeration on small random graphs.
func TestWDMatricesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(347))
	for trial := 0; trial < 20; trial++ {
		c := randomSequential(rng)
		g, err := buildGraph(c)
		if err != nil {
			t.Fatal(err)
		}
		W, D := g.wdMatrices()
		nv := len(g.gateOf)
		// Brute force: DFS over all simple-ish paths with a depth cap.
		type wd struct{ w, d int32 }
		best := make(map[[2]int]wd)
		var dfs func(u, cur, w, d int, depth int)
		dfs = func(src, cur, w, d, depth int) {
			key := [2]int{src, cur}
			if b, ok := best[key]; !ok || int32(w) < b.w || (int32(w) == b.w && int32(d) > b.d) {
				best[key] = wd{int32(w), int32(d)}
			} else if int32(w) > b.w+4 {
				return // prune hopeless branches
			}
			if depth > nv+4 {
				return
			}
			for _, ei := range g.out[cur] {
				e := g.edges[ei]
				dfs(src, e.v, w+e.w, d+g.delay[e.v], depth+1)
			}
		}
		for u := 0; u < nv; u++ {
			dfs(u, u, 0, g.delay[u], 0)
		}
		for u := 0; u < nv; u++ {
			for v := 0; v < nv; v++ {
				b, ok := best[[2]int{u, v}]
				if !ok {
					if W[u][v] >= 0 && u != v {
						// Brute force may have pruned a deep path; only
						// flag clear disagreements.
						continue
					}
					continue
				}
				if W[u][v] != b.w {
					t.Fatalf("trial %d: W(%d,%d) = %d, brute force %d", trial, u, v, W[u][v], b.w)
				}
				if D[u][v] != b.d {
					t.Fatalf("trial %d: D(%d,%d) = %d, brute force %d", trial, u, v, D[u][v], b.d)
				}
			}
		}
	}
}
