package retime

import (
	"math/rand"
	"testing"

	"seqver/internal/cbf"
	"seqver/internal/netlist"
	"seqver/internal/sim"
)

// chain4 builds a 4-gate inverter chain with two latches at the end:
// initial period 4, optimal period 2 after distributing the latches.
func chain4() *netlist.Circuit {
	c := netlist.New("chain4")
	a := c.AddInput("a")
	g1 := c.AddGate("g1", netlist.OpNot, a)
	g2 := c.AddGate("g2", netlist.OpNot, g1)
	g3 := c.AddGate("g3", netlist.OpNot, g2)
	g4 := c.AddGate("g4", netlist.OpNot, g3)
	l1 := c.AddLatch("l1", g4)
	l2 := c.AddLatch("l2", l1)
	c.AddOutput("o", l2)
	return c
}

func TestPeriodOfChain(t *testing.T) {
	p, err := Period(chain4())
	if err != nil {
		t.Fatal(err)
	}
	if p != 4 {
		t.Fatalf("period = %d, want 4", p)
	}
}

func TestMinPeriodChain(t *testing.T) {
	res, err := MinPeriod(chain4())
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 2 {
		t.Fatalf("min period = %d, want 2", res.Period)
	}
	got, err := Period(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if got > 2 {
		t.Fatalf("rebuilt circuit period = %d", got)
	}
	if res.Moves == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestMinPeriodPreservesCBF(t *testing.T) {
	orig := chain4()
	res, err := MinPeriod(orig)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := cbf.Unroll(orig)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := cbf.Unroll(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Same single input at same depth, same function.
	if u1.InputNames()[0] != u2.InputNames()[0] {
		t.Fatalf("CBF supports differ: %v vs %v", u1.InputNames(), u2.InputNames())
	}
	s1, s2 := sim.New(u1), sim.New(u2)
	for _, v := range []bool{false, true} {
		o1, _ := s1.Step([]bool{v}, sim.State{})
		o2, _ := s2.Step([]bool{v}, sim.State{})
		if o1[0] != o2[0] {
			t.Fatalf("CBF functions differ at %v", v)
		}
	}
}

// loop3 builds a cyclic circuit: 3 gates and 2 latches on a loop, XORed
// with an input. Minimum period is 2 (3 units of delay over 2 latches).
func loop3() *netlist.Circuit {
	c := netlist.New("loop3")
	a := c.AddInput("a")
	l1 := c.AddLatch("l1", 0)
	l2 := c.AddLatch("l2", l1)
	g1 := c.AddGate("g1", netlist.OpXor, l2, a)
	g2 := c.AddGate("g2", netlist.OpNot, g1)
	g3 := c.AddGate("g3", netlist.OpNot, g2)
	c.SetLatchData(l1, g3)
	c.AddOutput("o", g1)
	return c
}

func TestMinPeriodLoop(t *testing.T) {
	res, err := MinPeriod(loop3())
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 2 {
		t.Fatalf("loop min period = %d, want 2", res.Period)
	}
}

func TestRetimedLoopSequentiallyEquivalent(t *testing.T) {
	orig := loop3()
	res, err := MinPeriod(orig)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	eq, witness := sim.HistoryEquivalent(orig, res.Circuit, 20, 10, rng)
	if !eq {
		t.Fatalf("retimed loop not exact-3-valued equivalent; witness %v", witness)
	}
}

func TestConstrainedMinAreaReducesLatches(t *testing.T) {
	// At a relaxed period the two end latches can merge into fewer
	// positions than the min-period solution needs.
	c := chain4()
	minp, err := MinPeriod(c)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := ConstrainedMinArea(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Latches > minp.Latches {
		t.Fatalf("relaxed area %d > min-period area %d", relaxed.Latches, minp.Latches)
	}
	if p, _ := Period(relaxed.Circuit); p > 4 {
		t.Fatalf("relaxed period %d exceeds bound", p)
	}
	// The original had 2 latches; the relaxed solution should not need
	// more.
	if relaxed.Latches > 2 {
		t.Fatalf("relaxed latches = %d", relaxed.Latches)
	}
}

func TestConstrainedMinAreaInfeasible(t *testing.T) {
	// Period 1 is infeasible for a loop with 3 gates and 2 latches.
	if _, err := ConstrainedMinArea(loop3(), 1); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestFanoutSharing(t *testing.T) {
	// One driver fans out to two consumers, both behind one latch: the
	// rebuilt circuit shares a single latch chain.
	c := netlist.New("share")
	a := c.AddInput("a")
	g := c.AddGate("g", netlist.OpNot, a)
	l1 := c.AddLatch("l1", g)
	l2 := c.AddLatch("l2", g)
	o1 := c.AddGate("o1", netlist.OpBuf, l1)
	o2 := c.AddGate("o2", netlist.OpBuf, l2)
	c.AddOutput("x", o1)
	c.AddOutput("y", o2)
	res, err := ConstrainedMinArea(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latches != 1 {
		t.Fatalf("latches = %d, want 1 (shared chain)", res.Latches)
	}
}

// fig16 reproduces Figure 16: forward retiming of a load-enabled latch
// across a gate (single enable class, enable is a primary input).
func fig16() *netlist.Circuit {
	c := netlist.New("fig16")
	a := c.AddInput("a")
	b := c.AddInput("b")
	e := c.AddInput("e")
	la := c.AddEnabledLatch("la", a, e)
	lb := c.AddEnabledLatch("lb", b, e)
	g := c.AddGate("g", netlist.OpAnd, la, lb)
	g2 := c.AddGate("g2", netlist.OpNot, g)
	c.AddOutput("o", g2)
	return c
}

func TestRetimeEnabledSingleClass(t *testing.T) {
	c := fig16()
	res, err := ConstrainedMinArea(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Forward move merges the two input latches into one after g: area 1.
	if res.Latches != 1 {
		t.Fatalf("latches = %d, want 1 after forward move", res.Latches)
	}
	// The rebuilt latch keeps the enable class.
	lid := res.Circuit.Latches[0]
	en := res.Circuit.Nodes[lid].Enable
	if en == netlist.NoEnable || res.Circuit.Nodes[en].Name != "e" {
		t.Fatal("enable class lost during retiming")
	}
	// Behaviour check via simulation from matching power-up states:
	// outputs agree once the enable has fired (flushing power-up).
	rng := rand.New(rand.NewSource(83))
	eq, witness := sim.HistoryEquivalent(c, res.Circuit, 20, 8, rng)
	if !eq {
		t.Fatalf("enabled retime broke equivalence; witness %v", witness)
	}
}

func TestMultiClassRejected(t *testing.T) {
	c := netlist.New("mc")
	a := c.AddInput("a")
	e1 := c.AddInput("e1")
	e2 := c.AddInput("e2")
	l1 := c.AddEnabledLatch("l1", a, e1)
	l2 := c.AddEnabledLatch("l2", l1, e2)
	c.AddOutput("o", l2)
	if _, err := MinPeriod(c); err == nil {
		t.Fatal("multi-class circuit accepted")
	}
}

func TestGateEnableRejected(t *testing.T) {
	c := netlist.New("ge")
	a := c.AddInput("a")
	b := c.AddInput("b")
	e := c.AddGate("e", netlist.OpAnd, a, b)
	l := c.AddEnabledLatch("l", a, e)
	c.AddOutput("o", l)
	if _, err := MinPeriod(c); err == nil {
		t.Fatal("gate-driven enable accepted")
	}
}

func TestMinPossiblePeriod(t *testing.T) {
	p, err := MinPossiblePeriod(chain4())
	if err != nil {
		t.Fatal(err)
	}
	if p != 2 {
		t.Fatalf("min possible period = %d", p)
	}
}

func TestRandomRetimePreservesBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 25; trial++ {
		c := randomSequential(rng)
		res, err := MinPeriod(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Period > mustPeriod(t, c) {
			t.Fatalf("trial %d: retiming worsened period", trial)
		}
		eq, witness := sim.HistoryEquivalent(c, res.Circuit, 10, 8, rng)
		if !eq {
			t.Fatalf("trial %d: retimed circuit inequivalent; witness %v\noriginal:\n%s\nretimed:\n%s",
				trial, witness, c, res.Circuit)
		}
	}
}

func mustPeriod(t *testing.T, c *netlist.Circuit) int {
	t.Helper()
	p, err := Period(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomSequential builds a small random sequential circuit (possibly
// cyclic) with regular latches.
func randomSequential(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("rnd")
	var pool []int
	for i := 0; i < 3; i++ {
		pool = append(pool, c.AddInput(string(rune('a'+i))))
	}
	// Pre-create a few latches with placeholder data.
	nl := 1 + rng.Intn(3)
	var latches []int
	for i := 0; i < nl; i++ {
		l := c.AddLatch("L"+string(rune('0'+i)), 0)
		latches = append(latches, l)
		pool = append(pool, l)
	}
	ops := []netlist.Op{netlist.OpAnd, netlist.OpOr, netlist.OpXor, netlist.OpNand, netlist.OpNot}
	for g := 0; g < 6+rng.Intn(6); g++ {
		op := ops[rng.Intn(len(ops))]
		var id int
		if op == netlist.OpNot {
			id = c.AddGate("", op, pool[rng.Intn(len(pool))])
		} else {
			id = c.AddGate("", op, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
		}
		pool = append(pool, id)
	}
	for _, l := range latches {
		c.SetLatchData(l, pool[len(pool)-1-rng.Intn(3)])
	}
	c.AddOutput("o", pool[len(pool)-1])
	if err := c.Check(); err != nil {
		// Combinational cycle cannot happen (gates only reference
		// earlier pool entries), so any failure is a bug.
		panic(err)
	}
	return c
}
