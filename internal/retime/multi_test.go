package retime

import (
	"math/rand"
	"testing"

	"seqver/internal/netlist"
	"seqver/internal/sim"
)

// twoClassPipeline builds a two-class circuit: a regular-latch pipeline
// badly balanced (all logic before the latches) interleaved with a bank
// of enabled latches.
func twoClassPipeline() *netlist.Circuit {
	c := netlist.New("mc")
	a := c.AddInput("a")
	b := c.AddInput("b")
	le := c.AddInput("le")
	// Deep front stage.
	g1 := c.AddGate("g1", netlist.OpXor, a, b)
	g2 := c.AddGate("g2", netlist.OpNand, g1, a)
	g3 := c.AddGate("g3", netlist.OpNot, g2)
	g4 := c.AddGate("g4", netlist.OpOr, g3, b)
	// Regular latch chain at the end of the deep stage.
	l1 := c.AddLatch("l1", g4)
	l2 := c.AddLatch("l2", l1)
	// An enabled side channel: two enabled latches around shallow logic.
	e1 := c.AddEnabledLatch("e1", a, le)
	e2 := c.AddEnabledLatch("e2", b, le)
	h := c.AddGate("h", netlist.OpAnd, e1, e2)
	o := c.AddGate("o", netlist.OpXor, l2, h)
	c.AddOutput("o", o)
	return c
}

func TestMinPeriodMultiImproves(t *testing.T) {
	c := twoClassPipeline()
	p0, err := Period(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinPeriodMulti(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period >= p0 {
		t.Fatalf("multi-class retiming did not improve: %d -> %d", p0, res.Period)
	}
	// Classes preserved: the result still has both regular and enabled
	// latches wired to the original enable.
	hasRegular, hasEnabled := false, false
	for _, id := range res.Circuit.Latches {
		n := res.Circuit.Nodes[id]
		if n.Enable == netlist.NoEnable {
			hasRegular = true
		} else if res.Circuit.Nodes[n.Enable].Name == "le" {
			hasEnabled = true
		} else {
			t.Fatalf("latch %s has foreign enable", n.Name)
		}
	}
	if !hasRegular || !hasEnabled {
		t.Fatalf("class structure lost: regular=%v enabled=%v", hasRegular, hasEnabled)
	}
	rng := rand.New(rand.NewSource(271))
	eq, witness := sim.HistoryEquivalent(c, res.Circuit, 20, 10, rng)
	if !eq {
		t.Fatalf("multi-class retiming broke behaviour; witness %v", witness)
	}
}

func TestMinPeriodMultiSingleClassDelegates(t *testing.T) {
	c := chain4()
	res, err := MinPeriodMulti(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 2 {
		t.Fatalf("period = %d", res.Period)
	}
}

func TestConstrainedMinAreaMulti(t *testing.T) {
	c := twoClassPipeline()
	p0, err := Period(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConstrainedMinAreaMulti(c, p0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latches > len(c.Latches) {
		t.Fatalf("area grew: %d -> %d", len(c.Latches), res.Latches)
	}
	if res.Period > p0 {
		t.Fatalf("period bound violated: %d > %d", res.Period, p0)
	}
	rng := rand.New(rand.NewSource(277))
	eq, _ := sim.HistoryEquivalent(c, res.Circuit, 15, 10, rng)
	if !eq {
		t.Fatal("min-area multi broke behaviour")
	}
}

func TestConstrainedMinAreaMultiInfeasible(t *testing.T) {
	if _, err := ConstrainedMinAreaMulti(twoClassPipeline(), 1); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestMultiRandomClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	for trial := 0; trial < 15; trial++ {
		c := randomMultiClass(rng)
		res, err := MinPeriodMulti(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p0, _ := Period(c)
		if res.Period > p0 {
			t.Fatalf("trial %d: period worsened %d -> %d", trial, p0, res.Period)
		}
		eq, witness := sim.HistoryEquivalent(c, res.Circuit, 10, 8, rng)
		if !eq {
			t.Fatalf("trial %d: behaviour broken; witness %v\nbefore:\n%s\nafter:\n%s",
				trial, witness, c, res.Circuit)
		}
	}
}

// randomMultiClass builds a random acyclic circuit mixing regular latches
// and two enabled classes (enables are PIs).
func randomMultiClass(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("rmc")
	var pool []int
	for i := 0; i < 3; i++ {
		pool = append(pool, c.AddInput(string(rune('a'+i))))
	}
	le1 := c.AddInput("le1")
	le2 := c.AddInput("le2")
	enables := []int{netlist.NoEnable, le1, le2}
	ops := []netlist.Op{netlist.OpAnd, netlist.OpOr, netlist.OpXor, netlist.OpNand, netlist.OpNot}
	nStages := 2 + rng.Intn(2)
	li := 0
	for s := 0; s < nStages; s++ {
		for g := 0; g < 3+rng.Intn(4); g++ {
			op := ops[rng.Intn(len(ops))]
			var id int
			if op == netlist.OpNot {
				id = c.AddGate("", op, pool[rng.Intn(len(pool))])
			} else {
				id = c.AddGate("", op, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
			}
			pool = append(pool, id)
		}
		for l := 0; l < 1+rng.Intn(2); l++ {
			en := enables[rng.Intn(len(enables))]
			id := c.AddEnabledLatch("L"+string(rune('0'+li)), pool[len(pool)-1-rng.Intn(3)], en)
			li++
			pool = append(pool, id)
		}
	}
	c.AddOutput("o", pool[len(pool)-1])
	return c
}
