package core

import (
	"math/rand"
	"testing"

	"seqver/internal/cec"
	"seqver/internal/netlist"
)

func TestReplaySimpleBug(t *testing.T) {
	orig := pipeCircuit()
	bug := pipeCircuit()
	bug.Nodes[bug.MustLookup("y")].Op = netlist.OpAnd
	rep, err := VerifyAcyclic(orig, bug, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Inequivalent {
		t.Fatal("bug not detected")
	}
	replay, err := ReplayCounterexample(orig, bug, rep.Result.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Output == "" || replay.Got1 == replay.Got2 {
		t.Fatalf("replay = %+v", replay)
	}
	if len(replay.Sequence) < 2 {
		t.Fatalf("sequence too short for a depth-2 circuit: %v", replay.Sequence)
	}
}

func TestReplayRandomBugs(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	replayed := 0
	for trial := 0; trial < 30; trial++ {
		c := randomCyclic(rng)
		p, err := Prepare(c, PrepareOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b := p.Circuit
		// Mutate a random gate of the prepared circuit.
		mut := b.Clone()
		var gates []int
		for _, n := range mut.Nodes {
			if n.Kind == netlist.KindGate {
				switch n.Op {
				case netlist.OpAnd, netlist.OpOr, netlist.OpXor, netlist.OpNand:
					gates = append(gates, n.ID)
				}
			}
		}
		if len(gates) == 0 {
			continue
		}
		g := mut.Nodes[gates[rng.Intn(len(gates))]]
		switch g.Op {
		case netlist.OpAnd:
			g.Op = netlist.OpOr
		case netlist.OpOr:
			g.Op = netlist.OpAnd
		case netlist.OpXor:
			g.Op = netlist.OpXnor
		case netlist.OpNand:
			g.Op = netlist.OpNor
		}
		rep, err := VerifyAcyclic(b, mut, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Result.Verdict != cec.Inequivalent {
			continue // mutation was redundant
		}
		replay, err := ReplayCounterexample(b, mut, rep.Result.Counterexample)
		if err != nil {
			t.Fatalf("trial %d: replay failed: %v", trial, err)
		}
		if replay.Got1 == replay.Got2 {
			t.Fatalf("trial %d: replay does not diverge", trial)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no mutation replayed across 30 trials")
	}
}

func TestReplayRejectsEnabled(t *testing.T) {
	c := netlist.New("en")
	d := c.AddInput("d")
	e := c.AddInput("e")
	q := c.AddEnabledLatch("q", d, e)
	c.AddOutput("o", q)
	if _, err := ReplayCounterexample(c, c.Clone(), map[string]bool{}); err == nil {
		t.Fatal("expected rejection for enabled latches")
	}
}

func TestReplayBadVariable(t *testing.T) {
	c := pipeCircuit()
	_, err := ReplayCounterexample(c, c.Clone(), map[string]bool{"nonsense": true})
	if err == nil {
		t.Fatal("expected error for malformed counterexample variable")
	}
}
