package core

import (
	"math/rand"
	"testing"

	"seqver/internal/cbf"
	"seqver/internal/cec"
	"seqver/internal/netlist"
	"seqver/internal/retime"
	"seqver/internal/synth"
)

// mixedCircuit has a unate self-loop latch (hold register), a binate
// self-loop (toggle), and an acyclic pipeline latch.
func mixedCircuit() *netlist.Circuit {
	c := netlist.New("mix")
	d := c.AddInput("d")
	en := c.AddInput("en")
	// Hold register: positive unate self-loop.
	hold := c.AddLatch("hold", 0)
	ld := c.AddGate("ld", netlist.OpAnd, en, d)
	nen := c.AddGate("nen", netlist.OpNot, en)
	hd := c.AddGate("hd", netlist.OpAnd, nen, hold)
	c.SetLatchData(hold, c.AddGate("hn", netlist.OpOr, ld, hd))
	// Toggle: binate self-loop.
	tog := c.AddLatch("tog", 0)
	c.SetLatchData(tog, c.AddGate("tn", netlist.OpXor, tog, en))
	// Pipeline latch: no feedback.
	pipe := c.AddLatch("pipe", d)
	o := c.AddGate("o", netlist.OpXor, c.AddGate("hp", netlist.OpAnd, hold, pipe), tog)
	c.AddOutput("o", o)
	return c
}

func TestPrepareStructural(t *testing.T) {
	c := mixedCircuit()
	res, err := Prepare(c, PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Structural mode must expose both self-loop latches.
	if len(res.Exposed) != 2 {
		t.Fatalf("exposed = %v, want both self-loops", res.Exposed)
	}
	if err := cbf.CheckAcyclic(res.Circuit); err != nil {
		t.Fatal(err)
	}
	if res.TotalLatches != 3 {
		t.Fatalf("total = %d", res.TotalLatches)
	}
}

func TestPrepareUnateAware(t *testing.T) {
	c := mixedCircuit()
	res, err := Prepare(c, PrepareOptions{UnateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// The hold register is re-modeled, only the toggle is exposed.
	if len(res.Modeled) != 1 || res.Modeled[0] != "hold" {
		t.Fatalf("modeled = %v", res.Modeled)
	}
	if len(res.Exposed) != 1 || res.Exposed[0] != "tog" {
		t.Fatalf("exposed = %v", res.Exposed)
	}
	if err := cbf.CheckAcyclic(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareProtected(t *testing.T) {
	// Cross-coupled pair: protecting one forces the other.
	c := netlist.New("cr")
	a := c.AddInput("a")
	l1 := c.AddLatch("l1", 0)
	l2 := c.AddLatch("l2", 0)
	c.SetLatchData(l1, c.AddGate("g1", netlist.OpAnd, l2, a))
	c.SetLatchData(l2, c.AddGate("g2", netlist.OpOr, l1, a))
	c.AddOutput("o", l1)
	res, err := Prepare(c, PrepareOptions{Protected: map[string]bool{"l1": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exposed) != 1 || res.Exposed[0] != "l2" {
		t.Fatalf("exposed = %v", res.Exposed)
	}
}

// pipeline circuit for positive verification through the full optimize
// loop.
func pipeCircuit() *netlist.Circuit {
	c := netlist.New("pl")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", netlist.OpXor, a, b)
	y := c.AddGate("y", netlist.OpNand, x, a)
	l1 := c.AddLatch("l1", y)
	z := c.AddGate("z", netlist.OpNot, l1)
	l2 := c.AddLatch("l2", z)
	c.AddOutput("o", l2)
	return c
}

func TestVerifyAcyclicAfterRetimeAndSynth(t *testing.T) {
	orig := pipeCircuit()
	rt, err := retime.MinPeriod(orig)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := synth.Optimize(rt.Circuit, synth.DefaultScript())
	if err != nil {
		t.Fatal(err)
	}
	// The AIG decomposition counts inverters as unit-delay gates, so the
	// pre-synthesis period can be infeasible; re-derive the bound.
	p2, err := retime.MinPossiblePeriod(opt)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := retime.ConstrainedMinArea(opt, p2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyAcyclic(orig, rt2.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "cbf" || rep.Conservative {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict = %v (output %s)", rep.Result.Verdict, rep.Result.FailingOutput)
	}
	if rep.Depth < 1 {
		t.Fatalf("depth = %d", rep.Depth)
	}
}

func TestVerifyAcyclicDetectsBug(t *testing.T) {
	orig := pipeCircuit()
	bug := pipeCircuit()
	// Change the NAND to an AND: a real bug.
	bug.Nodes[bug.MustLookup("y")].Op = netlist.OpAnd
	rep, err := VerifyAcyclic(orig, bug, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Inequivalent {
		t.Fatalf("verdict = %v", rep.Result.Verdict)
	}
	if len(rep.Result.Counterexample) == 0 {
		t.Fatal("no counterexample")
	}
}

func TestVerifyCyclicCombOnly(t *testing.T) {
	// A cyclic circuit optimized combinationally (latches fixed):
	// Verify exposes the same latches on both sides and proves
	// equivalence.
	c := mixedCircuit()
	opt, err := synth.Optimize(c, synth.DefaultScript())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(c, opt, PrepareOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict = %v (output %s)", rep.Result.Verdict, rep.Result.FailingOutput)
	}
}

func TestVerifyCyclicDetectsBug(t *testing.T) {
	c := mixedCircuit()
	bug := mixedCircuit()
	bug.Nodes[bug.MustLookup("hp")].Op = netlist.OpOr
	rep, err := Verify(c, bug, PrepareOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Inequivalent {
		t.Fatalf("verdict = %v", rep.Result.Verdict)
	}
}

func TestVerifyMissingLatchName(t *testing.T) {
	c := mixedCircuit()
	other := netlist.New("other")
	a := other.AddInput("d")
	other.AddInput("en")
	l := other.AddLatch("nomatch", a)
	other.AddOutput("o", l)
	if _, err := Verify(c, other, PrepareOptions{}, Options{}); err == nil {
		t.Fatal("expected missing-latch error")
	}
}

func TestVerifyEnabledLatchesEDBF(t *testing.T) {
	mk := func() *netlist.Circuit {
		c := netlist.New("en")
		d := c.AddInput("d")
		e := c.AddInput("e")
		q := c.AddEnabledLatch("q", d, e)
		q2 := c.AddLatch("q2", q)
		c.AddOutput("o", q2)
		return c
	}
	rep, err := VerifyAcyclic(mk(), mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "edbf" || !rep.Conservative {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict = %v", rep.Result.Verdict)
	}
}

func TestVerifyUnateAwarePipelineEndToEnd(t *testing.T) {
	// Prepare in unate-aware mode, optimize combinationally, verify via
	// the EDBF path (the modeled latch is load-enabled now).
	c := mixedCircuit()
	p, err := Prepare(c, PrepareOptions{UnateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := synth.Optimize(p.Circuit, synth.DefaultScript())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyAcyclic(p.Circuit, opt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "edbf" {
		t.Fatalf("method = %s", rep.Method)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict = %v (output %s)", rep.Result.Verdict, rep.Result.FailingOutput)
	}
}

func TestRandomEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 10; trial++ {
		c := randomCyclic(rng)
		p, err := Prepare(c, PrepareOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rt, err := retime.MinPeriod(p.Circuit)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := synth.Optimize(rt.Circuit, synth.DefaultScript())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := VerifyAcyclic(p.Circuit, opt, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Result.Verdict != cec.Equivalent {
			t.Fatalf("trial %d: verdict %v (output %s)\nB:\n%s\nC:\n%s",
				trial, rep.Result.Verdict, rep.Result.FailingOutput, p.Circuit, opt)
		}
	}
}

func randomCyclic(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("rnd")
	var pool []int
	for i := 0; i < 3; i++ {
		pool = append(pool, c.AddInput(string(rune('a'+i))))
	}
	nl := 2 + rng.Intn(3)
	var latches []int
	for i := 0; i < nl; i++ {
		l := c.AddLatch("L"+string(rune('0'+i)), 0)
		latches = append(latches, l)
		pool = append(pool, l)
	}
	ops := []netlist.Op{netlist.OpAnd, netlist.OpOr, netlist.OpXor, netlist.OpNand, netlist.OpNot}
	for g := 0; g < 10+rng.Intn(10); g++ {
		op := ops[rng.Intn(len(ops))]
		var id int
		if op == netlist.OpNot {
			id = c.AddGate("", op, pool[rng.Intn(len(pool))])
		} else {
			id = c.AddGate("", op, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
		}
		pool = append(pool, id)
	}
	for _, l := range latches {
		c.SetLatchData(l, pool[len(pool)-1-rng.Intn(4)])
	}
	c.AddOutput("o", pool[len(pool)-1])
	return c
}

func TestVerifyEnabledAfterRetiming(t *testing.T) {
	// Theorem 5.2's sound use case end to end: a single-class enabled
	// circuit is retimed (Fig. 16 moves) and verified via EDBF.
	c := netlist.New("enrt")
	a := c.AddInput("a")
	b := c.AddInput("b")
	le := c.AddInput("le")
	la := c.AddEnabledLatch("la", a, le)
	lb := c.AddEnabledLatch("lb", b, le)
	g := c.AddGate("g", netlist.OpAnd, la, lb)
	g2 := c.AddGate("g2", netlist.OpXor, g, a)
	c.AddOutput("o", g2)

	rt, err := retime.ConstrainedMinArea(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Latches >= 2 {
		t.Fatalf("expected forward merge, got %d latches", rt.Latches)
	}
	rep, err := VerifyAcyclic(c, rt.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "edbf" {
		t.Fatalf("method %s", rep.Method)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict %v (output %s)", rep.Result.Verdict, rep.Result.FailingOutput)
	}
}

func TestVerifyEnabledRetimingBugCaught(t *testing.T) {
	// Same setup, but the "optimized" circuit wires the wrong data: the
	// EDBF check must flag it.
	mk := func(bug bool) *netlist.Circuit {
		c := netlist.New("enb")
		a := c.AddInput("a")
		b := c.AddInput("b")
		le := c.AddInput("le")
		src := b
		if bug {
			src = c.AddGate("nb", netlist.OpNot, b)
		}
		la := c.AddEnabledLatch("la", a, le)
		lb := c.AddEnabledLatch("lb", src, le)
		g := c.AddGate("g", netlist.OpAnd, la, lb)
		c.AddOutput("o", g)
		return c
	}
	rep, err := VerifyAcyclic(mk(false), mk(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Inequivalent {
		t.Fatalf("verdict %v", rep.Result.Verdict)
	}
	if !rep.Conservative {
		t.Fatal("EDBF verdicts must be flagged conservative")
	}
}

func TestVerifyMultiClassRetimedEDBF(t *testing.T) {
	// Multi-class retiming output verified through the EDBF path: the
	// full extension story (beyond the paper's own tooling) closed loop.
	c := netlist.New("mcrt")
	a := c.AddInput("a")
	b := c.AddInput("b")
	le := c.AddInput("le")
	g1 := c.AddGate("g1", netlist.OpXor, a, b)
	g2 := c.AddGate("g2", netlist.OpNand, g1, a)
	g3 := c.AddGate("g3", netlist.OpNot, g2)
	l1 := c.AddLatch("l1", g3)
	l2 := c.AddLatch("l2", l1)
	e1 := c.AddEnabledLatch("e1", a, le)
	o := c.AddGate("o", netlist.OpXor, l2, e1)
	c.AddOutput("o", o)

	rt, err := retime.MinPeriodMulti(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyAcyclic(c, rt.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != cec.Equivalent {
		t.Fatalf("verdict %v (method %s, output %s)",
			rep.Result.Verdict, rep.Method, rep.Result.FailingOutput)
	}
}
