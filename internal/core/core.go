// Package core ties the substrates into the paper's verification
// methodology (Figure 19): make a sequential circuit satisfy the
// feedback constraint by unate re-modeling and/or latch exposure
// (Section 6, 7.1), reduce both the golden and the optimized circuit to
// combinational form via CBF or EDBF unrolling (Sections 4–5), and
// discharge the resulting problem with the combinational equivalence
// checker (Section 7.4).
package core

import (
	"context"
	"fmt"
	"time"

	"seqver/internal/cbf"
	"seqver/internal/cec"
	"seqver/internal/edbf"
	"seqver/internal/feedback"
	"seqver/internal/netlist"
	"seqver/internal/obs"
	"seqver/internal/unate"
)

// PrepareOptions controls the constraint-satisfaction step.
type PrepareOptions struct {
	// UnateAware first re-models self-loop latches whose next-state
	// function is positive unate in the latch variable as load-enabled
	// latches (Lemma 6.1), which removes them from the feedback graph
	// and reduces the number of exposed latches (the refinement the
	// paper predicts in Section 8.1, point 5). Off by default to match
	// the paper's experimental setup (Section 8, step 1).
	UnateAware bool
	// Protected latch names are exposed only when unavoidable (the
	// paper notes designers pin FSM state bits regardless; protection
	// inverts that: latches the optimizer may not lose to exposure).
	Protected map[string]bool
}

// PrepareResult is the modified circuit B of the experimental flow.
type PrepareResult struct {
	// Circuit satisfies the acyclicity constraint: all feedback paths
	// are broken by exposure (and, in unate-aware mode, re-modeling).
	Circuit *netlist.Circuit
	// Exposed lists the names of latches turned into pseudo-ports.
	Exposed []string
	// Modeled lists the names of latches re-modeled per Lemma 6.1.
	Modeled []string
	// TotalLatches is the latch count of the input circuit.
	TotalLatches int
}

// Prepare produces the constraint-satisfying circuit B from A: it finds
// a minimal feedback vertex set of the latch dependency graph and
// exposes it (optionally after unate re-modeling). The returned circuit
// is acyclic and ready for retiming/synthesis and CBF/EDBF unrolling.
func Prepare(a *netlist.Circuit, opt PrepareOptions) (*PrepareResult, error) {
	return PrepareCtx(context.Background(), a, opt)
}

// PrepareCtx is Prepare under the context's tracer: a "prepare" span
// wraps the whole constraint-satisfaction step, with child spans for
// the unate re-modeling ("unate.model") and feedback-breaking
// ("feedback.break") phases.
func PrepareCtx(ctx context.Context, a *netlist.Circuit, opt PrepareOptions) (*PrepareResult, error) {
	ctx, sp := obs.Start1(ctx, "prepare", obs.S("circuit", a.Name))
	defer sp.End()
	res := &PrepareResult{TotalLatches: len(a.Latches)}
	work := a
	if opt.UnateAware {
		modeled, names, err := modelUnate(ctx, a)
		if err != nil {
			return nil, err
		}
		work = modeled
		res.Modeled = names
	}
	var prot map[int]bool
	if opt.Protected != nil {
		prot = make(map[int]bool)
		for _, id := range work.Latches {
			if opt.Protected[work.Nodes[id].Name] {
				prot[id] = true
			}
		}
	}
	b, exposed, err := feedback.BreakFeedbackCtx(ctx, work, prot)
	if err != nil {
		return nil, err
	}
	for _, id := range exposed {
		res.Exposed = append(res.Exposed, work.Nodes[id].Name)
	}
	res.Circuit = netlist.Sweep(b, false)
	return res, nil
}

func modelUnate(ctx context.Context, a *netlist.Circuit) (*netlist.Circuit, []string, error) {
	out, modeled, err := unate.ModelFeedbackCtx(ctx, a)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(modeled))
	for _, id := range modeled {
		names = append(names, a.Nodes[id].Name)
	}
	return netlist.Sweep(out, false), names, nil
}

// Options controls Verify.
type Options struct {
	// Rewrite enables the paper's Eq. 5 event rewriting in the EDBF
	// path, trading hardware-exactness for fewer false negatives.
	Rewrite bool
	// CEC tunes the combinational engine.
	CEC cec.Options
}

// Report is the outcome of a verification run.
type Report struct {
	// Method is "cbf" for regular-latch circuits, "edbf" when
	// load-enabled latches forced the event calculus.
	Method string
	// Depth is the (topological) sequential depth of the first circuit.
	Depth int
	// UnrolledGates counts the gates of the two unrolled circuits (the
	// Figure 18 replication cost).
	UnrolledGates [2]int
	// Result is the combinational checker's verdict.
	Result *cec.Result
	// Conservative is set when the method can produce false negatives
	// (EDBF; Section 5.2): an Inequivalent verdict is then "not proven
	// equivalent" rather than a definite counterexample.
	Conservative bool
	Elapsed      time.Duration
}

// VerifyAcyclic checks the paper's exact 3-valued sequential equivalence
// of two acyclic circuits (both must already satisfy the feedback
// constraint — run Prepare first, and optimize only the prepared
// circuit). Circuits with only regular latches take the CBF path
// (complete, Theorem 5.1); circuits with load-enabled latches take the
// EDBF path (sound for retiming+synthesis pairs, else conservative,
// Theorem 5.2).
func VerifyAcyclic(c1, c2 *netlist.Circuit, opt Options) (*Report, error) {
	return VerifyAcyclicCtx(context.Background(), c1, c2, opt)
}

// VerifyAcyclicCtx is VerifyAcyclic under cooperative cancellation: the
// context (and opt.CEC.Budget) bound the equivalence check's wall
// clock, and exhaustion degrades to an Undecided verdict naming the
// unresolved outputs rather than an error (see cec.CheckCtx).
func VerifyAcyclicCtx(ctx context.Context, c1, c2 *netlist.Circuit, opt Options) (*Report, error) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, "verify")
	defer sp.End()
	u, err := UnrollAcyclicCtx(ctx, c1, c2, opt.Rewrite)
	if err != nil {
		return nil, err
	}
	res, err := u.CheckCtx(ctx, opt.CEC)
	if err != nil {
		return nil, err
	}
	rep := u.report()
	rep.Result = res
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Unrolled is the combinational reduction of a verification pair: the
// CBF or EDBF unrollings of both circuits, ready for the equivalence
// checker. It is the seam between "what problem is this" and "decide
// it" — the verification daemon hashes U1/U2 (cec.MiterHash) to key its
// result cache before spending any solver time.
type Unrolled struct {
	// U1, U2 are the combinational unrollings, name-aligned for cec.
	U1, U2 *netlist.Circuit
	// Method is "cbf" (regular latches, complete) or "edbf"
	// (load-enabled latches, conservative).
	Method string
	// Depth is the sequential depth of the first circuit (CBF only).
	Depth int
	// Conservative is set on the EDBF path: an Inequivalent verdict may
	// be a false negative.
	Conservative bool
	// UnrolledGates counts the gates of the two unrollings (the
	// Figure 18 replication cost).
	UnrolledGates [2]int
}

// report seeds a Report with the unrolling's metadata.
func (u *Unrolled) report() *Report {
	return &Report{Method: u.Method, Depth: u.Depth,
		UnrolledGates: u.UnrolledGates, Conservative: u.Conservative}
}

// CheckCtx discharges the reduction with the combinational checker.
func (u *Unrolled) CheckCtx(ctx context.Context, opt cec.Options) (*cec.Result, error) {
	return cec.CheckCtx(ctx, u.U1, u.U2, opt)
}

// UnrollAcyclicCtx reduces an acyclic pair to combinational form
// without deciding it: the CBF path for regular-latch circuits
// (Theorem 5.1, exact) or the EDBF path when load-enabled latches are
// present (Theorem 5.2, conservative). Both circuits must already
// satisfy the feedback constraint.
func UnrollAcyclicCtx(ctx context.Context, c1, c2 *netlist.Circuit, rewrite bool) (*Unrolled, error) {
	u := &Unrolled{}
	var err error
	if c1.IsRegular() && c2.IsRegular() {
		u.Method = "cbf"
		if u.U1, err = cbf.UnrollCtx(ctx, c1); err != nil {
			return nil, err
		}
		if u.U2, err = cbf.UnrollCtx(ctx, c2); err != nil {
			return nil, err
		}
		if u.Depth, err = cbf.SequentialDepth(c1); err != nil {
			return nil, err
		}
	} else {
		u.Method = "edbf"
		u.Conservative = true
		cx := edbf.NewCtx()
		cx.Rewrite = rewrite
		if u.U1, err = cx.UnrollCtx(ctx, c1); err != nil {
			return nil, err
		}
		if u.U2, err = cx.UnrollCtx(ctx, c2); err != nil {
			return nil, err
		}
	}
	if sp := obs.CurrentSpan(ctx); sp != nil {
		sp.Event("unrolled", obs.S("method", u.Method),
			obs.I("gates1", int64(u.U1.NumGates())), obs.I("gates2", int64(u.U2.NumGates())))
	}
	u.UnrolledGates = [2]int{u.U1.NumGates(), u.U2.NumGates()}
	return u, nil
}

// MatchExposure exposes the named latches in c, mirroring an exposure
// already applied to the other side of a comparison, and verifies the
// result is acyclic. It is the second half of Verify's preparation.
func MatchExposure(c *netlist.Circuit, exposed []string) (*netlist.Circuit, error) {
	var ids []int
	for _, name := range exposed {
		id := c.Lookup(name)
		if id < 0 || c.Nodes[id].Kind != netlist.KindLatch {
			return nil, fmt.Errorf("core: latch %q exposed in first circuit is missing in second", name)
		}
		ids = append(ids, id)
	}
	b, err := feedback.Expose(c, ids)
	if err != nil {
		return nil, err
	}
	b = netlist.Sweep(b, false)
	if err := cbf.CheckAcyclic(b); err != nil {
		return nil, fmt.Errorf("core: second circuit still cyclic after matching exposure: %w", err)
	}
	return b, nil
}

// UnrollPairCtx runs the full reduction for two arbitrary sequential
// circuits: prepare the first (expose a feedback vertex set), mirror
// the exposure onto the second by latch name, and unroll both. The
// returned Unrolled is the cacheable verification problem; the
// PrepareResult reports what was exposed.
func UnrollPairCtx(ctx context.Context, c1, c2 *netlist.Circuit, prep PrepareOptions, rewrite bool) (*Unrolled, *PrepareResult, error) {
	p1, err := PrepareCtx(ctx, c1, prep)
	if err != nil {
		return nil, nil, err
	}
	b2, err := MatchExposure(c2, p1.Exposed)
	if err != nil {
		return nil, nil, err
	}
	u, err := UnrollAcyclicCtx(ctx, p1.Circuit, b2, rewrite)
	if err != nil {
		return nil, nil, err
	}
	return u, p1, nil
}

// Verify checks two arbitrary sequential circuits: it prepares the first
// (exposing a feedback vertex set), exposes the same latch names in the
// second, and runs VerifyAcyclic. Intended for pairs that share latch
// names on the feedback structure (e.g. a design before and after
// combinational-only optimization); pairs produced by the full
// retime-and-resynthesize flow should instead be handled by preparing
// once and optimizing the prepared circuit.
func Verify(c1, c2 *netlist.Circuit, prep PrepareOptions, opt Options) (*Report, error) {
	return VerifyCtx(context.Background(), c1, c2, prep, opt)
}

// VerifyCtx is Verify under cooperative cancellation (see
// VerifyAcyclicCtx for the budget semantics).
func VerifyCtx(ctx context.Context, c1, c2 *netlist.Circuit, prep PrepareOptions, opt Options) (*Report, error) {
	p1, err := PrepareCtx(ctx, c1, prep)
	if err != nil {
		return nil, err
	}
	// Expose the same names in c2.
	b2, err := MatchExposure(c2, p1.Exposed)
	if err != nil {
		return nil, err
	}
	return VerifyAcyclicCtx(ctx, p1.Circuit, b2, opt)
}
