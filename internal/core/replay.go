package core

import (
	"fmt"
	"sort"

	"seqver/internal/cbf"
	"seqver/internal/netlist"
	"seqver/internal/sim"
)

// Replay converts a CBF counterexample — an assignment to the unrolled
// input-window variables a@k — back into a concrete input sequence for
// the sequential circuits and simulates both to locate the cycle where
// they diverge. This is the diagnostic the paper's flow implies (a CBF
// minterm "can generate an input sequence", Theorem 5.1 proof) but that
// verification tools must actually produce for users.
type Replay struct {
	// Sequence is the distinguishing input sequence (index [cycle][pi]),
	// long enough to flush both circuits' power-up state before the
	// observation point.
	Sequence [][]bool
	// Cycle is the observation cycle (the last one).
	Cycle int
	// Output is the first primary output that differs there.
	Output string
	// Got1/Got2 are the differing values.
	Got1, Got2 bool
}

// ReplayCounterexample rebuilds the input sequence from a counterexample
// produced by VerifyAcyclic's CBF path and validates it by sequential
// simulation of both circuits (from all-zero power-up, after a flushing
// prefix derived from the counterexample window). Returns an error if
// the counterexample does not actually distinguish the circuits — which
// would indicate a checker bug, not user error.
func ReplayCounterexample(c1, c2 *netlist.Circuit, cex map[string]bool) (*Replay, error) {
	if !c1.IsRegular() || !c2.IsRegular() {
		return nil, fmt.Errorf("core: replay supports the CBF (regular-latch) path only")
	}
	// Window length: 1 + max delay mentioned in the counterexample, but
	// at least 1 + each circuit's depth so the state is flushed.
	maxK := 0
	for name := range cex {
		if _, k, err := cbf.ParseTimedName(name); err == nil && k > maxK {
			maxK = k
		}
	}
	d1, err := cbf.SequentialDepth(c1)
	if err != nil {
		return nil, err
	}
	d2, err := cbf.SequentialDepth(c2)
	if err != nil {
		return nil, err
	}
	if d1 > maxK {
		maxK = d1
	}
	if d2 > maxK {
		maxK = d2
	}
	length := maxK + 1

	// Build the sequence: cycle t (0-based, observation at length-1)
	// carries input a's value from variable a@(length-1-t); variables
	// missing from the counterexample (outside both supports) are false.
	piPos := make(map[string]int)
	for i, n := range c1.InputNames() {
		piPos[n] = i
	}
	seq := make([][]bool, length)
	for t := range seq {
		seq[t] = make([]bool, len(c1.Inputs))
	}
	for name, val := range cex {
		base, k, err := cbf.ParseTimedName(name)
		if err != nil {
			return nil, fmt.Errorf("core: counterexample variable %q is not a CBF window variable", name)
		}
		pos, ok := piPos[base]
		if !ok {
			return nil, fmt.Errorf("core: counterexample mentions unknown input %q", base)
		}
		t := length - 1 - k
		if t < 0 {
			return nil, fmt.Errorf("core: internal error: delay %d outside window", k)
		}
		seq[t][pos] = val
	}

	// Simulate both; the divergence must appear at the final cycle.
	s1, s2 := sim.New(c1), sim.New(c2)
	o1 := s1.Run(seq, make(sim.State, len(c1.Latches)))
	o2 := s2.Run(seq, make(sim.State, len(c2.Latches)))
	last := length - 1

	names := c1.OutputNames()
	idx2 := outputIndexByName(c2)
	order := append([]string(nil), names...)
	sort.Strings(order)
	for _, name := range order {
		i1 := outputIndexByName(c1)[name]
		i2, ok := idx2[name]
		if !ok {
			continue
		}
		if o1[last][i1] != o2[last][i2] {
			return &Replay{
				Sequence: seq,
				Cycle:    last,
				Output:   name,
				Got1:     o1[last][i1],
				Got2:     o2[last][i2],
			}, nil
		}
	}
	return nil, fmt.Errorf("core: counterexample failed to reproduce a divergence (checker bug?)")
}

func outputIndexByName(c *netlist.Circuit) map[string]int {
	m := make(map[string]int, len(c.Outputs))
	for i, o := range c.Outputs {
		m[o.Name] = i
	}
	return m
}
