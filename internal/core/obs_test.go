package core

import (
	"bytes"
	"context"
	"testing"

	"seqver/internal/obs"
)

// collect drains the trace a full VerifyCtx run emits through a JSONL
// sink and returns the validated report plus the raw bytes.
func runTraced(t *testing.T, unateAware bool) (*obs.LintReport, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	ctx := obs.WithTracer(context.Background(), tr)

	c := mixedCircuit()
	rep, err := VerifyCtx(ctx, c, c, PrepareOptions{UnateAware: unateAware}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict.String() != "equivalent" {
		t.Fatalf("verdict = %v on identical circuits", rep.Result.Verdict)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lint, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace fails its own linter: %v\n%s", err, buf.Bytes())
	}
	return lint, buf.Bytes()
}

// The full verification pipeline, run with a live tracer, must emit a
// schema-valid JSONL stream containing the documented phase spans in a
// properly nested tree. This is the test CI's smoke job mirrors from
// the shell.
func TestVerifyCtxEmitsValidTrace(t *testing.T) {
	lint, raw := runTraced(t, false)
	if lint.Spans < 5 {
		t.Errorf("expected at least 5 spans (prepare, feedback.break, verify, unroll, cec), got %d", lint.Spans)
	}
	if lint.MaxDepth < 3 {
		t.Errorf("span tree too flat: max depth %d, want >= 3 (prepare > feedback.break nests under the root)", lint.MaxDepth)
	}
	for _, name := range []string{`"prepare"`, `"feedback.break"`, `"verify"`, `"cec"`} {
		if !bytes.Contains(raw, []byte(name)) {
			t.Errorf("trace is missing the %s phase span:\n%s", name, raw)
		}
	}
}

func TestPrepareCtxUnateAwareTracesModeling(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := PrepareCtx(ctx, mixedCircuit(), PrepareOptions{UnateAware: true}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted trace fails its own linter: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"unate.model"`)) {
		t.Errorf("unate-aware run did not trace the re-modeling phase:\n%s", buf.Bytes())
	}
}

// With no tracer on the context, VerifyCtx must behave identically —
// the instrumentation is strictly passive.
func TestVerifyCtxWithoutTracer(t *testing.T) {
	c := mixedCircuit()
	rep, err := VerifyCtx(context.Background(), c, c, PrepareOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict.String() != "equivalent" {
		t.Fatalf("verdict = %v", rep.Result.Verdict)
	}
}
