package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// wireEvent is the documented JSONL schema (one object per line).
// Required fields: type, ts, name; span is additionally required on
// begin/end lines. Omitted numeric fields mean 0; omitted attrs mean
// none. ValidateJSONL enforces exactly this contract.
type wireEvent struct {
	Type   string         `json:"type"`
	TS     int64          `json:"ts"`
	Name   string         `json:"name"`
	Span   uint64         `json:"span,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Dur    int64          `json:"dur,omitempty"`
	Value  int64          `json:"value,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// MarshalEvent encodes one event in the documented JSONL wire schema
// (one JSON object, no trailing newline). It exists for sinks that
// stream events outside a JSONLSink — the verification daemon's SSE
// fan-out re-encodes per subscriber-visible line and must stay
// bit-compatible with what ValidateJSONL accepts.
func MarshalEvent(ev Event) ([]byte, error) {
	return json.Marshal(wireEvent{
		Type: ev.Type, TS: ev.TS, Name: ev.Name, Span: ev.Span,
		Parent: ev.Parent, Dur: ev.Dur, Value: ev.Value, Attrs: attrMap(ev.Attrs),
	})
}

// JSONLSink streams every event as one JSON line (the wireEvent
// schema). It buffers; Close flushes.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // optional underlying closer
	enc *json.Encoder
	err error
}

// NewJSONLSink writes JSONL to w. If w is an io.Closer, Close closes it
// after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one line.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(wireEvent{
		Type: ev.Type, TS: ev.TS, Name: ev.Name, Span: ev.Span,
		Parent: ev.Parent, Dur: ev.Dur, Value: ev.Value, Attrs: attrMap(ev.Attrs),
	})
}

// Close flushes the buffer (and closes the underlying writer when it is
// closeable), reporting the first error seen.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ChromeSink buffers the whole trace and, on Close, writes Chrome
// trace_event JSON ({"traceEvents": [...]}) loadable in chrome://tracing
// and Perfetto. Spans become complete ("X") events; counters and gauges
// become counter ("C") tracks; instants become thread-scoped "i" marks.
//
// trace_event nesting is positional — events on one pid/tid lane nest
// by time containment — while obs spans nest by parent id across
// goroutines (parallel miter proofs overlap in time). Close therefore
// lays spans out on synthetic "thread" lanes: each span goes on its
// parent's lane when it fits strictly inside whatever is open there,
// otherwise on the first lane where it nests, otherwise on a fresh
// lane. The result renders as the familiar flame graph with one extra
// lane per degree of parallelism.
type ChromeSink struct {
	w      io.WriteCloser
	events []Event
}

// NewChromeSink buffers a Chrome trace to be written to w on Close.
func NewChromeSink(w io.WriteCloser) *ChromeSink { return &ChromeSink{w: w} }

// Emit buffers the event.
func (s *ChromeSink) Emit(ev Event) { s.events = append(s.events, ev) }

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Close lays out the buffered spans and writes the trace JSON.
func (s *ChromeSink) Close() error {
	defer s.w.Close()
	type spanRec struct {
		id, parent uint64
		name       string
		start, end int64
		attrs      []Attr
		lane       int
		instants   []Event
	}
	spans := map[uint64]*spanRec{}
	var order []uint64
	var maxTS int64
	counters := map[string]int64{} // running totals for count events
	var out []chromeEvent
	for _, ev := range s.events {
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		switch ev.Type {
		case EvBegin:
			spans[ev.Span] = &spanRec{id: ev.Span, parent: ev.Parent,
				name: ev.Name, start: ev.TS, end: -1, attrs: ev.Attrs}
			order = append(order, ev.Span)
		case EvEnd:
			if r := spans[ev.Span]; r != nil {
				r.end = ev.TS
			}
		case EvInstant:
			if r := spans[ev.Span]; r != nil {
				r.instants = append(r.instants, ev)
			}
		case EvCount, EvGauge:
			v := ev.Value
			if ev.Type == EvCount {
				counters[ev.Name] += ev.Value
				v = counters[ev.Name]
			}
			out = append(out, chromeEvent{Name: ev.Name, Ph: "C",
				TS: us(ev.TS), PID: 1, TID: 0,
				Args: map[string]any{"value": v}})
		}
	}
	// Unended spans (a crashed run) extend to the last timestamp.
	for _, r := range spans {
		if r.end < 0 {
			r.end = maxTS
		}
	}
	// Lane assignment in start order: each lane holds a stack of open
	// intervals. A span may share a lane only when the innermost
	// interval still open there is its own parent and contains it —
	// time containment alone is not enough, or a sibling that happens
	// to finish early would render as nested under another sibling.
	sorted := append([]uint64(nil), order...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := spans[sorted[i]], spans[sorted[j]]
		if a.start != b.start {
			return a.start < b.start
		}
		return a.end > b.end // outermost first on ties
	})
	type openIv struct {
		end int64
		id  uint64
	}
	var lanes [][]openIv // per lane: stack of open intervals
	fits := func(l int, r *spanRec) bool {
		stack := lanes[l]
		// Drop intervals already closed at r.start.
		for len(stack) > 0 && stack[len(stack)-1].end <= r.start {
			stack = stack[:len(stack)-1]
		}
		lanes[l] = stack
		if len(stack) == 0 {
			return true
		}
		top := stack[len(stack)-1]
		return top.id == r.parent && top.end >= r.end
	}
	for _, id := range sorted {
		r := spans[id]
		lane := -1
		if p := spans[r.parent]; p != nil && fits(p.lane, r) {
			lane = p.lane
		} else {
			for l := range lanes {
				if fits(l, r) {
					lane = l
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		r.lane = lane
		lanes[lane] = append(lanes[lane], openIv{end: r.end, id: r.id})
	}
	for _, id := range order {
		r := spans[id]
		out = append(out, chromeEvent{Name: r.name, Ph: "X",
			TS: us(r.start), Dur: us(r.end - r.start),
			PID: 1, TID: r.lane + 1, Args: attrMap(r.attrs)})
		for _, in := range r.instants {
			out = append(out, chromeEvent{Name: in.Name, Ph: "i",
				TS: us(in.TS), PID: 1, TID: r.lane + 1, S: "t",
				Args: attrMap(in.Attrs)})
		}
	}
	enc := json.NewEncoder(s.w)
	return enc.Encode(map[string]any{"traceEvents": out, "displayTimeUnit": "ms"})
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// SummarySink aggregates span wall time and counter totals by name; the
// bench harness attaches the result to BENCH_cec.json so the perf
// trajectory shows which stage moved. It keeps no event stream.
type SummarySink struct {
	durNS  map[string]int64
	calls  map[string]int64
	counts map[string]int64
}

// NewSummarySink returns an empty aggregator.
func NewSummarySink() *SummarySink {
	return &SummarySink{
		durNS:  map[string]int64{},
		calls:  map[string]int64{},
		counts: map[string]int64{},
	}
}

// Emit folds the event into the aggregate.
func (s *SummarySink) Emit(ev Event) {
	switch ev.Type {
	case EvEnd:
		s.durNS[ev.Name] += ev.Dur
		s.calls[ev.Name]++
	case EvCount:
		s.counts[ev.Name] += ev.Value
	}
}

// Close is a no-op (the aggregate stays readable).
func (s *SummarySink) Close() error { return nil }

// PhaseNS returns total span wall time by span name, in ns.
func (s *SummarySink) PhaseNS() map[string]int64 {
	out := make(map[string]int64, len(s.durNS))
	for k, v := range s.durNS {
		out[k] = v
	}
	return out
}

// Counts returns accumulated counter totals by name.
func (s *SummarySink) Counts() map[string]int64 {
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// String renders the aggregate sorted by descending wall time.
func (s *SummarySink) String() string {
	type row struct {
		name string
		ns   int64
	}
	rows := make([]row, 0, len(s.durNS))
	for k, v := range s.durNS {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ns != rows[j].ns {
			return rows[i].ns > rows[j].ns
		}
		return rows[i].name < rows[j].name
	})
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %12d ns  (%d spans)\n", r.name, r.ns, s.calls[r.name])
	}
	return out
}
