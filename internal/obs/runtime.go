package obs

import (
	"math"
	"runtime/metrics"
)

// Span-scoped allocation attribution: a MemScope samples the Go
// runtime's allocation and GC counters when a coarse phase span opens
// and emits the deltas as gauges on that span when the phase ends, so a
// trace answers "which phase allocated those bytes" without a heap
// profiler attached. The ROADMAP's struct-of-arrays refactor (item 5)
// gates on exactly these numbers: per-phase alloc volume before and
// after, from the same harness.
//
// The sampling rides runtime/metrics, not runtime.ReadMemStats — no
// stop-the-world, safe on every coarse phase boundary. Only the coarse
// spans (parse, unroll, sim, fraig, miters) are scoped; per-miter spans
// stay untouched so the hot path keeps its zero-overhead contract.
//
// Attribution caveat: the counters are process-wide, so a concurrent
// phase (another job on the same daemon) bleeds into the delta. For the
// single-run CLIs the attribution is exact; for the daemon it is a
// per-phase upper bound, which is the honest thing a Go runtime can
// give without per-goroutine allocation accounting.

// The runtime/metrics keys MemScope samples. All are cumulative except
// the live-heap byte count.
const (
	rmAllocBytes   = "/gc/heap/allocs:bytes"              // cumulative allocated bytes
	rmAllocObjects = "/gc/heap/allocs:objects"            // cumulative allocated objects
	rmGCCycles     = "/gc/cycles/total:gc-cycles"         // completed GC cycles
	rmGCPauses     = "/sched/pauses/total/gc:seconds"     // stop-the-world pause histogram
	rmHeapLive     = "/memory/classes/heap/objects:bytes" // live heap bytes
)

// memSample is one reading of the sampled counters.
type memSample struct {
	allocBytes   uint64
	allocObjects uint64
	gcCycles     uint64
	pauseNS      int64
	heapLive     uint64
}

func readMemSample() memSample {
	buf := [5]metrics.Sample{
		{Name: rmAllocBytes},
		{Name: rmAllocObjects},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
		{Name: rmHeapLive},
	}
	metrics.Read(buf[:])
	var s memSample
	if buf[0].Value.Kind() == metrics.KindUint64 {
		s.allocBytes = buf[0].Value.Uint64()
	}
	if buf[1].Value.Kind() == metrics.KindUint64 {
		s.allocObjects = buf[1].Value.Uint64()
	}
	if buf[2].Value.Kind() == metrics.KindUint64 {
		s.gcCycles = buf[2].Value.Uint64()
	}
	if buf[3].Value.Kind() == metrics.KindFloat64Histogram {
		s.pauseNS = histTotalNS(buf[3].Value.Float64Histogram())
	}
	if buf[4].Value.Kind() == metrics.KindUint64 {
		s.heapLive = buf[4].Value.Uint64()
	}
	return s
}

// histTotalNS estimates the cumulative time in a runtime/metrics
// duration histogram, in nanoseconds: count × bucket upper bound,
// falling back to the lower bound for the open-ended last bucket. A
// conservative (over-)estimate with bucket resolution — the runtime
// exposes no exact pause total, and for a regression signal the bound
// is what matters.
func histTotalNS(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		upper := h.Buckets[i+1]
		if math.IsInf(upper, +1) {
			upper = h.Buckets[i]
		}
		total += float64(n) * upper
	}
	return int64(total * 1e9)
}

// MemCounters returns the process's cumulative heap-allocation counters
// and estimated cumulative GC pause time — the same readings MemScope
// samples — for harnesses (cmd/cecbench) that account allocation around
// a timed region by delta.
func MemCounters() (allocBytes, allocObjects uint64, gcPauseNS int64) {
	s := readMemSample()
	return s.allocBytes, s.allocObjects, s.pauseNS
}

// MemScope attributes runtime allocation to one span. It travels by
// value so the not-tracing path (nil span) costs one nil check and
// allocates nothing — the same contract Start pins (see
// TestMemScopeZeroAllocNoTracer).
type MemScope struct {
	sp   *Span
	base memSample
}

// SpanMem opens a memory scope on sp: the runtime counters are sampled
// now, and End emits the deltas as gauges on the span. A nil span
// yields the inert scope.
func SpanMem(sp *Span) MemScope {
	if sp == nil {
		return MemScope{}
	}
	return MemScope{sp: sp, base: readMemSample()}
}

// End samples the counters again and emits the phase's memory account
// on the span:
//
//	mem.alloc_bytes      bytes allocated during the scope
//	mem.alloc_objects    objects allocated during the scope
//	mem.gc_cycles        GC cycles completed during the scope
//	mem.gc_pause_ns      estimated stop-the-world pause time accrued
//	mem.heap_live_bytes  live heap at scope end (absolute, not a delta)
//
// Call End before the span's own End so the gauges land inside the
// span. Safe on the inert scope.
func (m MemScope) End() {
	if m.sp == nil {
		return
	}
	cur := readMemSample()
	m.sp.Gauge("mem.alloc_bytes", int64(cur.allocBytes-m.base.allocBytes))
	m.sp.Gauge("mem.alloc_objects", int64(cur.allocObjects-m.base.allocObjects))
	m.sp.Gauge("mem.gc_cycles", int64(cur.gcCycles-m.base.gcCycles))
	m.sp.Gauge("mem.gc_pause_ns", cur.pauseNS-m.base.pauseNS)
	m.sp.Gauge("mem.heap_live_bytes", int64(cur.heapLive))
}
