package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DecodeJSONL parses a JSONL trace (the wireEvent schema MarshalEvent
// and JSONLSink emit) back into Events — the inverse of the encode
// path, for consumers that fold a stored trace into a derived view
// (the daemon's per-job hardness report). It is deliberately lenient
// where ValidateJSONL is strict: lines are decoded independently, so a
// tail-truncated trace still yields every complete line, and span
// lifecycle violations are the caller's concern. A malformed line is a
// hard error; run ValidateJSONL first when schema cleanliness matters.
//
// Attribute ordering inside a line is not preserved by JSON maps, so
// decoded Attrs are sorted by key for deterministic folding.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: decode line %d: %w", line, err)
		}
		out = append(out, Event{
			Type: ev.Type, TS: ev.TS, Span: ev.Span, Parent: ev.Parent,
			Name: ev.Name, Dur: ev.Dur, Value: ev.Value, Attrs: attrsOf(ev.Attrs),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// attrsOf converts a decoded attrs map back to the in-memory form.
// JSON numbers arrive as float64; integral values are restored as Int
// attrs, everything else is stringified.
func attrsOf(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Attr, 0, len(keys))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			out = append(out, S(k, v))
		case float64:
			out = append(out, I(k, int64(v)))
		default:
			out = append(out, S(k, fmt.Sprint(v)))
		}
	}
	return out
}

// AttrStr returns the string value of the named attribute ("" when
// absent or integer-valued).
func AttrStr(attrs []Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key && a.IsStr {
			return a.Str
		}
	}
	return ""
}

// AttrInt returns the integer value of the named attribute (0 when
// absent or string-valued).
func AttrInt(attrs []Attr, key string) int64 {
	for _, a := range attrs {
		if a.Key == key && !a.IsStr {
			return a.Int
		}
	}
	return 0
}
