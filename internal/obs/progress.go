package obs

import (
	"fmt"
	"io"
	"time"
)

// ProgressSink renders a live, human-readable account of the pipeline
// to a writer (stderr in the CLIs): phase begin/end lines for shallow
// spans, and throttled counter/gauge lines with rates so a stuck run
// shows where it is stuck. Deep spans (per-miter, per-arm) are
// summarized through their counters rather than printed individually —
// a 10k-output run must not print 10k lines.
type ProgressSink struct {
	w        io.Writer
	maxDepth int
	interval int64 // ns between reprints of one metric

	depth   map[uint64]int // span id -> depth (roots at 0)
	metrics map[string]*metricState
}

type metricState struct {
	lastTS    int64 // ts of the last printed sample
	lastValue int64
	total     int64 // running total for count metrics
	printed   bool
}

// NewProgressSink renders to w, printing spans up to depth 2 and
// reprinting each metric at most every 200ms.
func NewProgressSink(w io.Writer) *ProgressSink {
	return &ProgressSink{
		w:        w,
		maxDepth: 2,
		interval: int64(200 * time.Millisecond),
		depth:    map[uint64]int{},
		metrics:  map[string]*metricState{},
	}
}

// Emit renders the event if it is due.
func (s *ProgressSink) Emit(ev Event) {
	switch ev.Type {
	case EvBegin:
		d := 0
		if ev.Parent != 0 {
			d = s.depth[ev.Parent] + 1
		}
		s.depth[ev.Span] = d
		if d <= s.maxDepth {
			fmt.Fprintf(s.w, "[%8s] %s> %s%s\n", stamp(ev.TS), indent(d), ev.Name, attrSuffix(ev.Attrs))
		}
	case EvEnd:
		d := s.depth[ev.Span]
		delete(s.depth, ev.Span)
		if d <= s.maxDepth {
			fmt.Fprintf(s.w, "[%8s] %s< %s (%v)\n", stamp(ev.TS), indent(d), ev.Name,
				time.Duration(ev.Dur).Round(time.Microsecond))
		}
	case EvCount, EvGauge:
		m := s.metrics[ev.Name]
		if m == nil {
			m = &metricState{}
			s.metrics[ev.Name] = m
		}
		level := ev.Value
		if ev.Type == EvCount {
			m.total += ev.Value
			level = m.total
		}
		if m.printed && ev.TS-m.lastTS < s.interval {
			if ev.Type != EvCount {
				m.lastValue = level
			}
			return
		}
		// Rate since the last printed sample; Rate guards the
		// zero-elapsed case (trivially small circuits can emit two
		// samples in the same clock tick).
		rate := Rate(level-m.lastValue, ev.TS-m.lastTS)
		line := fmt.Sprintf("[%8s]     %s = %d", stamp(ev.TS), ev.Name, level)
		if m.printed && rate > 0 {
			line += fmt.Sprintf(" (%.0f/s)", rate)
		}
		fmt.Fprintln(s.w, line)
		m.lastTS, m.lastValue, m.printed = ev.TS, level, true
	case EvInstant:
		if d, ok := s.depth[ev.Span]; ok && d < s.maxDepth {
			fmt.Fprintf(s.w, "[%8s]     * %s%s\n", stamp(ev.TS), ev.Name, attrSuffix(ev.Attrs))
		}
	}
}

// Close is a no-op; the renderer writes as it goes.
func (s *ProgressSink) Close() error { return nil }

func stamp(ns int64) string {
	return time.Duration(ns).Round(time.Millisecond).String()
}

func indent(d int) string {
	switch d {
	case 0:
		return ""
	case 1:
		return "  "
	default:
		return "    "
	}
}

func attrSuffix(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	out := " ["
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		if a.IsStr {
			out += fmt.Sprintf("%s=%s", a.Key, a.Str)
		} else {
			out += fmt.Sprintf("%s=%d", a.Key, a.Int)
		}
	}
	return out + "]"
}
