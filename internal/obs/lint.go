package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// LintReport summarizes a validated JSONL event stream.
type LintReport struct {
	Lines    int // total non-empty lines
	Spans    int // begin events seen
	MaxDepth int // deepest nesting observed
}

// ValidateJSONL checks a JSONL trace against the documented wireEvent
// schema:
//
//   - every non-empty line parses as a JSON object
//   - type is one of begin|end|instant|count|gauge
//   - name is non-empty and ts is non-negative
//   - begin: span id is fresh and non-zero; parent is 0 or an open span
//   - end: closes exactly one open span, with the begin's name
//   - instant/count/gauge: span is 0 or references an open span
//   - at EOF every begun span has ended
//
// It returns a summary or the first violation (with its line number).
func ValidateJSONL(r io.Reader) (*LintReport, error) {
	type openSpan struct {
		name  string
		depth int
	}
	open := map[uint64]openSpan{}
	seen := map[uint64]bool{}
	rep := &LintReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		rep.Lines++
		var ev wireEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("line %d: not a schema event: %w", line, err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("line %d: missing name", line)
		}
		if ev.TS < 0 {
			return nil, fmt.Errorf("line %d: negative ts %d", line, ev.TS)
		}
		switch ev.Type {
		case EvBegin:
			if ev.Span == 0 {
				return nil, fmt.Errorf("line %d: begin without span id", line)
			}
			if seen[ev.Span] {
				return nil, fmt.Errorf("line %d: span %d reused", line, ev.Span)
			}
			depth := 1 // a root span counts as depth 1
			if ev.Parent != 0 {
				p, ok := open[ev.Parent]
				if !ok {
					return nil, fmt.Errorf("line %d: span %d begun under parent %d, which is not open", line, ev.Span, ev.Parent)
				}
				depth = p.depth + 1
			}
			seen[ev.Span] = true
			open[ev.Span] = openSpan{name: ev.Name, depth: depth}
			rep.Spans++
			if depth > rep.MaxDepth {
				rep.MaxDepth = depth
			}
		case EvEnd:
			sp, ok := open[ev.Span]
			if !ok {
				return nil, fmt.Errorf("line %d: end of span %d, which is not open", line, ev.Span)
			}
			if sp.name != ev.Name {
				return nil, fmt.Errorf("line %d: end of span %d named %q, begun as %q", line, ev.Span, ev.Name, sp.name)
			}
			if ev.Dur < 0 {
				return nil, fmt.Errorf("line %d: negative dur %d", line, ev.Dur)
			}
			delete(open, ev.Span)
		case EvInstant, EvCount, EvGauge:
			if ev.Span != 0 {
				if _, ok := open[ev.Span]; !ok {
					return nil, fmt.Errorf("line %d: %s event on span %d, which is not open", line, ev.Type, ev.Span)
				}
			}
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q", line, ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(open) > 0 {
		for id, sp := range open {
			return nil, fmt.Errorf("span %d (%q) never ended", id, sp.name)
		}
	}
	return rep, nil
}
