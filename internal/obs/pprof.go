package obs

import (
	"context"
	"runtime/pprof"
)

// runtime/pprof label plumbing: CPU (and goroutine) profiles collected
// from a live daemon are only useful if samples can be sliced by job
// and phase. The obs baggage already carries the correlation ids
// (job_id, request_id) for spans and logs; these helpers project the
// same attributes onto runtime/pprof goroutine labels, so `go tool
// pprof -tagfocus job_id=...` works on any capture — including ones
// taken while no tracer was installed (labels ride the goroutine, not
// the event stream).
//
// Labels are inherited by goroutines started from a labeled goroutine,
// so stamping the job worker once covers every miter-pool goroutine it
// spawns. The calls allocate (they build a label map); use them at
// coarse boundaries only — once per job, once per phase — never inside
// the per-miter hot path.

// GoroutineLabels applies the context's string baggage attributes
// (job_id, request_id, …) plus any extra key/value pairs as
// runtime/pprof labels on the current goroutine, returning the labeled
// context and a restore function that reinstates the goroutine's
// previous label set. With no baggage and no extras it is a no-op
// returning the context unchanged.
func GoroutineLabels(ctx context.Context, extras ...string) (context.Context, func()) {
	bg := BaggageFrom(ctx)
	if len(bg) == 0 && len(extras) == 0 {
		return ctx, func() {}
	}
	pairs := make([]string, 0, 2*len(bg)+len(extras))
	for _, a := range bg {
		if a.IsStr {
			pairs = append(pairs, a.Key, a.Str)
		}
	}
	pairs = append(pairs, extras...)
	prev := ctx // the unlabeled (or outer-labeled) context
	lctx := pprof.WithLabels(ctx, pprof.Labels(pairs...))
	pprof.SetGoroutineLabels(lctx)
	return lctx, func() { pprof.SetGoroutineLabels(prev) }
}

// PhaseLabel stamps the current goroutine with a "phase" pprof label on
// top of whatever labels the context already carries (job_id from
// GoroutineLabels survives — WithLabels merges). The restore function
// reverts to the pre-phase label set. Goroutines spawned while the
// phase label is set inherit it.
func PhaseLabel(ctx context.Context, phase string) (context.Context, func()) {
	return GoroutineLabels(ctx, "phase", phase)
}

// ApplyGoroutineLabels applies ctx's pprof label set to the current
// goroutine — for pool goroutines that outlive one labeled region and
// re-enter with each work item's context.
func ApplyGoroutineLabels(ctx context.Context) {
	pprof.SetGoroutineLabels(ctx)
}
