package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestBaggageStampsSpanBegins(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	ctx := WithTracer(context.Background(), tr)
	ctx = WithBaggage(ctx, S("job_id", "j-42"))

	ctx, root := Start(ctx, "job", I("attempt", 1))
	_, child := Start(ctx, "cec")
	child.End()
	root.End()
	tr.Close()

	begins := 0
	for _, ev := range sink.events {
		if ev.Type != EvBegin {
			continue
		}
		begins++
		if got := AttrStr(ev.Attrs, "job_id"); got != "j-42" {
			t.Fatalf("span %q: job_id = %q, want j-42 (attrs %v)", ev.Name, got, ev.Attrs)
		}
	}
	if begins != 2 {
		t.Fatalf("begins = %d, want 2", begins)
	}
	// The explicit attr on the root must have survived the merge.
	if got := AttrInt(sink.events[0].Attrs, "attempt"); got != 1 {
		t.Fatalf("root attempt attr = %d, want 1", got)
	}
}

func TestBaggageAccumulates(t *testing.T) {
	ctx := WithBaggage(context.Background(), S("request_id", "r-1"))
	ctx = WithBaggage(ctx, S("job_id", "j-1"))
	bg := BaggageFrom(ctx)
	if len(bg) != 2 || AttrStr(bg, "request_id") != "r-1" || AttrStr(bg, "job_id") != "j-1" {
		t.Fatalf("baggage = %v", bg)
	}
	if WithBaggage(ctx) != ctx {
		t.Fatal("empty WithBaggage must return the context unchanged")
	}
}

func TestLogHandlerStampsBaggage(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(slog.NewJSONHandler(&buf, nil))
	ctx := WithBaggage(context.Background(), S("job_id", "j-7"), I("attempt", 3))

	logger.InfoContext(ctx, "job started", "engine", "portfolio")
	logger.With("component", "worker").InfoContext(ctx, "still stamped")
	logger.InfoContext(context.Background(), "no baggage")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3: %q", len(lines), buf.String())
	}
	parse := func(line string) map[string]any {
		rec := map[string]any{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	rec := parse(lines[0])
	if rec["job_id"] != "j-7" || rec["attempt"] != float64(3) || rec["engine"] != "portfolio" {
		t.Fatalf("line 0 = %v", rec)
	}
	rec = parse(lines[1])
	if rec["job_id"] != "j-7" || rec["component"] != "worker" {
		t.Fatalf("With() lost the baggage wrapper: %v", rec)
	}
	rec = parse(lines[2])
	if _, ok := rec["job_id"]; ok {
		t.Fatalf("baggage leaked into an unrelated context: %v", rec)
	}
}

func TestDecodeJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "job", S("job_id", "j-9"))
	_, m := Start(ctx, "miter", S("output", "o3"))
	m.Event("resolved", S("status", "equal"), S("engine", "sat"))
	m.Gauge("sat.conflicts", 120)
	m.End()
	root.Count("miters.resolved", 1)
	root.End()
	tr.Close()

	events, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 7 {
		t.Fatalf("events = %d, want 7", len(events))
	}
	if events[0].Type != EvBegin || AttrStr(events[0].Attrs, "job_id") != "j-9" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	var sawGauge, sawResolved bool
	for _, ev := range events {
		switch {
		case ev.Type == EvGauge && ev.Name == "sat.conflicts":
			sawGauge = ev.Value == 120
		case ev.Type == EvInstant && ev.Name == "resolved":
			sawResolved = AttrStr(ev.Attrs, "status") == "equal" &&
				AttrStr(ev.Attrs, "engine") == "sat"
		}
	}
	if !sawGauge || !sawResolved {
		t.Fatalf("gauge/resolved not decoded: gauge=%v resolved=%v", sawGauge, sawResolved)
	}

	// A tail-truncated trace still decodes its complete lines.
	trunc := buf.Bytes()[:bytes.LastIndexByte(buf.Bytes()[:buf.Len()-1], '\n')+1]
	events, err = DecodeJSONL(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("truncated decode = %d events, want 6", len(events))
	}
}
