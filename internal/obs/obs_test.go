package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// collectSink records events in order for assertions.
type collectSink struct{ events []Event }

func (s *collectSink) Emit(ev Event) { s.events = append(s.events, ev) }
func (s *collectSink) Close() error  { return nil }

// TestNoTracerZeroAlloc pins the overhead contract from DESIGN.md §10:
// with no tracer on the context, the instrumentation fast path (Start,
// Start1, End, Count, Gauge, Event guards) allocates nothing.
func TestNoTracerZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "phase")
		c2, sp2 := Start1(c, "miter", S("output", "o1"))
		if sp2 != nil {
			sp2.Event("budget.slice", I("slice_ns", 1), I("pending", 2))
		}
		sp2.Count("sat.calls", 1)
		sp2.Gauge("bdd.nodes", 42)
		CurrentSpan(c2).Gauge("x", 1)
		sp2.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-tracer fast path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.End()
	sp.Count("x", 1)
	sp.Gauge("x", 1)
	sp.Event("x")
	if FromContext(nil) != nil || CurrentSpan(nil) != nil {
		t.Fatal("nil context must yield nil tracer and span")
	}
	ctx, sp2 := Start(nil, "x")
	if ctx != nil || sp2 != nil {
		t.Fatal("Start on nil context must be a no-op")
	}
}

func TestSpanHierarchyAndEvents(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "root", S("engine", "portfolio"))
	ctx2, child := Start(ctx1, "child")
	child.Count("merges", 3)
	child.Gauge("nodes", 17)
	child.Event("note", I("k", 9))
	if got := CurrentSpan(ctx2); got != child {
		t.Fatalf("CurrentSpan = %v, want child", got)
	}
	child.End()
	child.End() // idempotent
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{EvBegin, EvBegin, EvCount, EvGauge, EvInstant, EvEnd, EvEnd}
	if len(sink.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(sink.events), len(want), sink.events)
	}
	for i, ty := range want {
		if sink.events[i].Type != ty {
			t.Fatalf("event %d type = %s, want %s", i, sink.events[i].Type, ty)
		}
	}
	begin := sink.events[1]
	if begin.Parent != sink.events[0].Span {
		t.Fatalf("child parent = %d, want root id %d", begin.Parent, sink.events[0].Span)
	}
	if end := sink.events[5]; end.Span != begin.Span || end.Dur < 0 {
		t.Fatalf("bad end event %+v", end)
	}
	// Timestamps are monotone within one goroutine.
	for i := 1; i < len(sink.events); i++ {
		if sink.events[i].TS < sink.events[i-1].TS {
			t.Fatalf("timestamps regressed at %d: %+v", i, sink.events)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	ctx := WithTracer(context.Background(), tr)
	ctx, sp := Start(ctx, "parse", S("file", "a.blif"))
	_, inner := Start(ctx, "fraig")
	inner.Count("fraig.merges", 5)
	inner.End()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("emitted stream fails its own schema: %v", err)
	}
	if rep.Spans != 2 || rep.MaxDepth != 2 {
		t.Fatalf("report = %+v, want 2 spans nested 2 deep", rep)
	}
}

func TestChromeSinkLanesAndValidity(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(nopCloser{&buf})
	tr := New(sink)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "miters")
	// Two overlapping children (parallel workers) must land on
	// different lanes; sequential grandchildren share their parent's.
	_, a := Start(ctx, "miter-a")
	_, b := Start(ctx, "miter-b")
	a.Count("sat.conflicts", 10)
	b.End()
	a.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.TID
		}
	}
	if len(tids) != 3 {
		t.Fatalf("want 3 complete events, got %v", tids)
	}
	if tids["miter-a"] == tids["miter-b"] {
		t.Fatalf("overlapping siblings share lane %d: %v", tids["miter-a"], tids)
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestProgressSinkRendersAndGuardsRates(t *testing.T) {
	var buf bytes.Buffer
	s := NewProgressSink(&buf)
	// Two gauge samples with the same timestamp: the rate path must not
	// divide by zero (NaN/Inf would render as such).
	s.Emit(Event{Type: EvBegin, TS: 0, Span: 1, Name: "cec"})
	s.Emit(Event{Type: EvGauge, TS: 5, Span: 1, Name: "bdd.nodes", Value: 10})
	s.Emit(Event{Type: EvGauge, TS: 5, Span: 1, Name: "bdd.nodes", Value: 20})
	s.Emit(Event{Type: EvEnd, TS: 10, Span: 1, Name: "cec", Dur: 10})
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("unguarded rate division:\n%s", out)
	}
	if !strings.Contains(out, "> cec") || !strings.Contains(out, "< cec") {
		t.Fatalf("span lines missing:\n%s", out)
	}
	if !strings.Contains(out, "bdd.nodes = 10") {
		t.Fatalf("gauge line missing:\n%s", out)
	}
}

func TestRateGuards(t *testing.T) {
	if r := Rate(100, 0); r != 0 {
		t.Fatalf("Rate with zero elapsed = %v, want 0", r)
	}
	if r := Rate(100, -5); r != 0 {
		t.Fatalf("Rate with negative elapsed = %v, want 0", r)
	}
	if r := Rate(100, int64(time.Second)); r != 100 {
		t.Fatalf("Rate(100, 1s) = %v, want 100", r)
	}
}

func TestThrottle(t *testing.T) {
	th := NewThrottle(time.Hour)
	if !th.Ok() {
		t.Fatal("first call must pass")
	}
	if th.Ok() {
		t.Fatal("second call within interval must be suppressed")
	}
	always := NewThrottle(0)
	if !always.Ok() || !always.Ok() {
		t.Fatal("zero-interval throttle must admit everything")
	}
}

func TestSummarySink(t *testing.T) {
	s := NewSummarySink()
	s.Emit(Event{Type: EvEnd, Name: "fraig", Dur: 100})
	s.Emit(Event{Type: EvEnd, Name: "fraig", Dur: 50})
	s.Emit(Event{Type: EvEnd, Name: "sim", Dur: 10})
	s.Emit(Event{Type: EvCount, Name: "merges", Value: 7})
	if got := s.PhaseNS()["fraig"]; got != 150 {
		t.Fatalf("fraig total = %d, want 150", got)
	}
	if got := s.Counts()["merges"]; got != 7 {
		t.Fatalf("merges = %d, want 7", got)
	}
	if str := s.String(); !strings.Contains(str, "fraig") {
		t.Fatalf("summary missing fraig:\n%s", str)
	}
}
