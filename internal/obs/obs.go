// Package obs is the zero-dependency observability layer of the
// verification pipeline: hierarchical spans with monotonic timestamps,
// named counters and gauges, and pluggable sinks (JSONL event stream,
// Chrome trace_event JSON, a human-readable progress renderer, and an
// aggregating summary for benchmark harnesses).
//
// A Tracer rides on the context.Context that the whole decision stack
// already threads (see cec.CheckCtx, core.VerifyAcyclicCtx): every
// instrumented phase calls Start, which is a no-op returning a nil span
// when no tracer is installed. The overhead contract is strict — with no
// tracer, Start/End/Count/Gauge cost two context lookups and a nil
// check, and allocate nothing (pinned by TestNoTracerZeroAlloc with
// testing.AllocsPerRun). All Span methods are nil-receiver-safe, so
// instrumentation sites never need to branch on whether tracing is on.
//
// # Event model
//
// Five event types flow to the sinks, all timestamped in nanoseconds on
// the tracer's monotonic clock (ns since tracer creation):
//
//   - begin:   a span opened (span id, parent span id, name, attrs)
//   - end:     a span closed (span id, name, dur = ns since its begin)
//   - instant: a point event attributed to a span (e.g. budget.slice)
//   - count:   a monotonic counter increment (value = delta)
//   - gauge:   an absolute sample (value = current level, e.g. bdd.nodes)
//
// Spans form a tree via parent ids, not a per-goroutine stack: one
// "miters" span legitimately has many concurrently open "miter"
// children, one per pool worker. The documented JSONL wire schema is
// specified and enforced by ValidateJSONL.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Event types, as they appear on the wire.
const (
	EvBegin   = "begin"
	EvEnd     = "end"
	EvInstant = "instant"
	EvCount   = "count"
	EvGauge   = "gauge"
)

// Event is one observability record handed to every sink. Ordering is
// the emission order (serialized under the tracer's mutex); timestamps
// of events from concurrent goroutines may be slightly out of order
// relative to that serialization.
type Event struct {
	Type   string
	TS     int64  // ns since the tracer's epoch (monotonic)
	Span   uint64 // owning span id; 0 for trace-level events
	Parent uint64 // parent span id (begin events; 0 for roots)
	Name   string
	Dur    int64  // ns, end events only
	Value  int64  // count delta or gauge level
	Attrs  []Attr // begin and instant events; nil otherwise
}

// Attr is one key/value attribute. Exactly one of Str/Int is
// meaningful, selected by IsStr. Attrs are plain values so that
// building one on a call site never heap-allocates.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// I builds an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// Sink consumes events. Emit calls are serialized by the tracer, so
// sinks need no internal locking; Close flushes buffered state.
type Sink interface {
	Emit(ev Event)
	Close() error
}

// Tracer fans events out to its sinks. Create one with New, install it
// on a context with WithTracer, and Close it when the traced run ends
// (Close closes every sink).
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	sinks []Sink
}

// New returns a tracer writing to the given sinks. The tracer's clock
// starts now: all event timestamps are nanoseconds since this call.
func New(sinks ...Sink) *Tracer {
	return &Tracer{epoch: time.Now(), sinks: sinks}
}

// Close closes every sink, returning the first error.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	return first
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	for _, s := range t.sinks {
		s.Emit(ev)
	}
	t.mu.Unlock()
}

type tracerKey struct{}
type spanKey struct{}
type baggageKey struct{}

// WithBaggage returns a context carrying correlation attributes —
// job_id, request_id — that are stamped automatically onto every span
// begin started beneath it and onto every slog record logged through a
// LogHandler. Baggage accumulates: attrs from an outer WithBaggage are
// kept and the new ones appended. Keep it to a handful of low-
// cardinality identifiers; every stamped event carries a copy.
func WithBaggage(ctx context.Context, attrs ...Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev := BaggageFrom(ctx)
	merged := make([]Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, baggageKey{}, merged)
}

// BaggageFrom returns the context's correlation attributes (nil when
// none are installed). Callers must not mutate the returned slice.
func BaggageFrom(ctx context.Context) []Attr {
	if ctx == nil {
		return nil
	}
	bg, _ := ctx.Value(baggageKey{}).([]Attr)
	return bg
}

// WithTracer returns a context carrying the tracer. Spans started from
// the returned context (and its descendants) are roots of the trace.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil when none is
// installed. A nil context yields nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// CurrentSpan returns the innermost span open on the context, or nil.
// A nil context yields nil; the result's methods are nil-safe either
// way.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Span is one timed region of the pipeline. A nil *Span is the "not
// tracing" span: every method returns immediately.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  int64
	ended  atomic.Bool
}

// Start opens a span named name as a child of the context's current
// span and returns a context carrying it. When the context has neither
// an open span nor a tracer, it returns the context unchanged and a nil
// span — the documented fast path. Optional attrs annotate the begin
// event; hot call sites that must stay allocation-free without a tracer
// should use Start1 instead (a variadic call may allocate its slice
// before the nil check).
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t, parent := startInfo(ctx)
	if t == nil {
		return ctx, nil
	}
	return startSpan(ctx, t, parent, name, attrs)
}

// Start1 is Start with exactly one attribute, shaped so that the
// no-tracer path performs no allocation (the Attr travels by value).
func Start1(ctx context.Context, name string, a Attr) (context.Context, *Span) {
	t, parent := startInfo(ctx)
	if t == nil {
		return ctx, nil
	}
	return startSpan(ctx, t, parent, name, []Attr{a})
}

func startInfo(ctx context.Context) (*Tracer, uint64) {
	if ctx == nil {
		return nil, 0
	}
	if sp, _ := ctx.Value(spanKey{}).(*Span); sp != nil {
		return sp.t, sp.id
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t, 0
}

func startSpan(ctx context.Context, t *Tracer, parent uint64, name string, attrs []Attr) (context.Context, *Span) {
	// Correlation baggage rides every begin event, so a job's spans can
	// be joined against its log lines by attribute alone. The lookup
	// happens only once a tracer is known to be installed, preserving
	// the no-tracer zero-allocation contract.
	if bg := BaggageFrom(ctx); len(bg) > 0 {
		merged := make([]Attr, 0, len(attrs)+len(bg))
		merged = append(merged, attrs...)
		attrs = append(merged, bg...)
	}
	sp := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: t.now()}
	t.emit(Event{Type: EvBegin, TS: sp.start, Span: sp.id, Parent: parent, Name: name, Attrs: attrs})
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// End closes the span, emitting its duration. Safe on a nil span and
// idempotent (a second End is dropped), so instrumentation can defer it
// unconditionally.
func (sp *Span) End() {
	if sp == nil || sp.ended.Swap(true) {
		return
	}
	ts := sp.t.now()
	sp.t.emit(Event{Type: EvEnd, TS: ts, Span: sp.id, Name: sp.name, Dur: ts - sp.start})
}

// Event emits an instant event attributed to the span. Guard hot call
// sites with `if sp != nil` so the variadic slice is never built when
// tracing is off.
func (sp *Span) Event(name string, attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.t.emit(Event{Type: EvInstant, TS: sp.t.now(), Span: sp.id, Name: name, Attrs: attrs})
}

// Count emits a monotonic counter increment attributed to the span.
// Sinks accumulate per name (the Chrome sink renders a running total).
func (sp *Span) Count(name string, delta int64) {
	if sp == nil {
		return
	}
	sp.t.emit(Event{Type: EvCount, TS: sp.t.now(), Span: sp.id, Name: name, Value: delta})
}

// Gauge emits an absolute sample attributed to the span (e.g. the BDD
// manager's live node count).
func (sp *Span) Gauge(name string, v int64) {
	if sp == nil {
		return
	}
	sp.t.emit(Event{Type: EvGauge, TS: sp.t.now(), Span: sp.id, Name: name, Value: v})
}

// Throttle rate-limits sampling callbacks (the SAT conflict-rate and
// BDD node-count hooks fire at solver poll boundaries, far too often to
// record every time). Ok reports true at most once per interval. Safe
// for concurrent use.
type Throttle struct {
	every int64 // ns
	last  atomic.Int64
}

// NewThrottle returns a throttle admitting one Ok per interval. A zero
// or negative interval admits everything.
func NewThrottle(interval time.Duration) *Throttle {
	return &Throttle{every: int64(interval)}
}

// Ok reports whether enough time has passed since the last admitted
// call. The first call is always admitted.
func (th *Throttle) Ok() bool {
	if th.every <= 0 {
		return true
	}
	now := time.Now().UnixNano()
	last := th.last.Load()
	if last != 0 && now-last < th.every {
		return false
	}
	return th.last.CompareAndSwap(last, now)
}

// Rate divides delta by an elapsed duration in ns, returning events per
// second, guarded against zero or negative denominators (trivially
// small circuits can finish a whole phase inside one clock tick).
func Rate(delta, elapsedNS int64) float64 {
	if elapsedNS <= 0 {
		return 0
	}
	return float64(delta) * 1e9 / float64(elapsedNS)
}
