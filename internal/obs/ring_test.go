package obs

import (
	"bytes"
	"strings"
	"testing"
)

func ringLint(t *testing.T, s *RingSink) *LintReport {
	t.Helper()
	var b bytes.Buffer
	if err := s.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	rep, err := ValidateJSONL(&b)
	if err != nil {
		t.Fatalf("repaired dump does not validate: %v", err)
	}
	return rep
}

func TestRingEvictionOrder(t *testing.T) {
	s := NewRingSink(3)
	for i := int64(1); i <= 5; i++ {
		s.Emit(Event{Type: EvInstant, TS: i, Name: "e", Span: 0})
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []int64{3, 4, 5} {
		if evs[i].TS != want {
			t.Errorf("event %d has ts %d, want %d (oldest first)", i, evs[i].TS, want)
		}
	}
	if got := s.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
}

func TestRingDefaultSize(t *testing.T) {
	s := NewRingSink(0)
	if len(s.buf) != DefaultRingSize {
		t.Fatalf("default ring size = %d, want %d", len(s.buf), DefaultRingSize)
	}
	if s.Dropped() != 0 {
		t.Fatal("fresh ring must report 0 dropped")
	}
}

// TestRingDumpCompleteTrace: when nothing was evicted the dump is the
// trace verbatim and needs no repair.
func TestRingDumpCompleteTrace(t *testing.T) {
	s := NewRingSink(16)
	s.Emit(Event{Type: EvBegin, TS: 0, Name: "check", Span: 1})
	s.Emit(Event{Type: EvBegin, TS: 1, Name: "sim", Span: 2, Parent: 1})
	s.Emit(Event{Type: EvCount, TS: 2, Name: "patterns", Span: 2, Value: 64})
	s.Emit(Event{Type: EvEnd, TS: 3, Name: "sim", Span: 2, Dur: 2})
	s.Emit(Event{Type: EvEnd, TS: 4, Name: "check", Span: 1, Dur: 4})
	rep := ringLint(t, s)
	if rep.Spans != 2 || rep.MaxDepth != 2 {
		t.Errorf("lint = %+v, want 2 spans, depth 2", rep)
	}
}

// TestRingDumpEvictedBegins: the begins fall off the ring but the ends
// survive; the repair must synthesize begins so the dump validates.
func TestRingDumpEvictedBegins(t *testing.T) {
	s := NewRingSink(3)
	s.Emit(Event{Type: EvBegin, TS: 0, Name: "check", Span: 1})
	s.Emit(Event{Type: EvBegin, TS: 1, Name: "sim", Span: 2, Parent: 1})
	s.Emit(Event{Type: EvInstant, TS: 2, Name: "tick", Span: 2})
	s.Emit(Event{Type: EvEnd, TS: 5, Name: "sim", Span: 2, Dur: 4})
	s.Emit(Event{Type: EvEnd, TS: 6, Name: "check", Span: 1, Dur: 6})
	// Ring now holds: instant(2), end sim, end check — both begins evicted.
	var b bytes.Buffer
	if err := s.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"synth":1`) {
		t.Errorf("dump has no synthetic begin markers:\n%s", out)
	}
	rep, err := ValidateJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatalf("repaired dump does not validate: %v\n%s", err, out)
	}
	if rep.Spans != 2 {
		t.Errorf("spans = %d, want 2 (both synthesized)", rep.Spans)
	}
}

// TestRingDumpOpenSpans: spans still open when the dump is cut get
// synthetic ends at the tail — the in-flight work is the interesting
// part of a post-mortem.
func TestRingDumpOpenSpans(t *testing.T) {
	s := NewRingSink(8)
	s.Emit(Event{Type: EvBegin, TS: 0, Name: "check", Span: 1})
	s.Emit(Event{Type: EvBegin, TS: 1, Name: "miter", Span: 2, Parent: 1})
	s.Emit(Event{Type: EvGauge, TS: 2, Name: "bdd.nodes", Span: 2, Value: 4096})
	// Run "dies" here: neither span ended.
	rep := ringLint(t, s)
	if rep.Spans != 2 {
		t.Errorf("spans = %d, want 2", rep.Spans)
	}
}

// TestRingDumpMixedRepair drives a big synthetic workload through a
// small ring and validates the dump, exercising eviction mid-span,
// orphan ends with durations, and unended children all at once.
func TestRingDumpMixedRepair(t *testing.T) {
	s := NewRingSink(5)
	ts := int64(0)
	tick := func() int64 { ts++; return ts }
	s.Emit(Event{Type: EvBegin, TS: tick(), Name: "root", Span: 1})
	for id := uint64(2); id < 8; id++ {
		s.Emit(Event{Type: EvBegin, TS: tick(), Name: "miter", Span: id, Parent: 1})
		s.Emit(Event{Type: EvCount, TS: tick(), Name: "sat.calls", Span: id, Value: 1})
		s.Emit(Event{Type: EvEnd, TS: tick(), Name: "miter", Span: id, Dur: 2})
	}
	// Last miter left open, root never ends.
	s.Emit(Event{Type: EvBegin, TS: tick(), Name: "miter", Span: 99, Parent: 1})
	ringLint(t, s)
}

// TestRingDumpThroughTracer is the integration path: a real tracer
// feeding the ring alongside a JSONL sink, both outputs validating.
func TestRingDumpThroughTracer(t *testing.T) {
	ring := NewRingSink(6) // small enough to force eviction
	var jsonl bytes.Buffer
	tr := New(NewJSONLSink(&jsonl), ring)
	ctx := WithTracer(t.Context(), tr)
	c, root := Start(ctx, "check")
	for i := 0; i < 4; i++ {
		_, sp := Start(c, "miter")
		sp.Count("sat.calls", 1)
		sp.End()
	}
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSONL(bytes.NewReader(jsonl.Bytes())); err != nil {
		t.Fatalf("full JSONL trace invalid: %v", err)
	}
	if s := ring.Dropped(); s == 0 {
		t.Fatal("test needs eviction to exercise the repair")
	}
	ringLint(t, ring)
}
