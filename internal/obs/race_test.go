package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The concurrency contracts under the race detector: Throttle is
// documented lock-free-safe for concurrent samplers, and ProgressSink —
// itself single-threaded — is driven only under the Tracer's emit lock,
// so concurrent emitters through a shared tracer must be clean. CI runs
// this package with -race (see the test job), which is what actually
// checks the claim; without -race these are plain smoke tests.

func TestThrottleConcurrentEmitters(t *testing.T) {
	const goroutines = 8
	th := NewThrottle(5 * time.Millisecond)
	var admitted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < 40*time.Millisecond {
				if th.Ok() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	got := admitted.Load()
	if got < 1 {
		t.Fatal("no call admitted; the first Ok must pass")
	}
	// The CAS admits at most one call per interval regardless of the
	// number of emitters; +2 covers the first call and edge overlap.
	max := int64(elapsed/(5*time.Millisecond)) + 2
	if got > max {
		t.Fatalf("admitted %d calls in %v from %d goroutines, want <= %d — throttle leaks under contention",
			got, elapsed, goroutines, max)
	}
}

func TestThrottleZeroIntervalAdmitsAll(t *testing.T) {
	th := NewThrottle(0)
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if th.Ok() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 400 {
		t.Fatalf("zero-interval throttle admitted %d of 400", admitted.Load())
	}
}

// syncBuffer guards a bytes.Buffer; the tracer lock already serializes
// sink writes, but the final read below races the assertion against
// nothing only if the buffer itself is safe to read after Wait.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressSinkConcurrentEmitters(t *testing.T) {
	var buf syncBuffer
	tr := New(NewProgressSink(&buf))
	ctx := WithTracer(context.Background(), tr)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := Start(ctx, "worker", I("g", int64(g)))
				_, inner := Start(c, "miter")
				inner.Count("sat.calls", 1)
				inner.Gauge("bdd.nodes", int64(i))
				inner.Event("budget.slice", I("slice_ns", int64(i)))
				inner.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "> worker") || !strings.Contains(out, "< worker") {
		t.Fatalf("progress output missing span lines:\n%.400s", out)
	}
	// Counter lines are throttled, but at least the first must print.
	if !strings.Contains(out, "sat.calls") {
		t.Fatalf("progress output missing counter line:\n%.400s", out)
	}
}
