package obs

import (
	"strings"
	"testing"
)

func lint(t *testing.T, doc string) (*LintReport, error) {
	t.Helper()
	return ValidateJSONL(strings.NewReader(doc))
}

func TestValidateJSONLAccepts(t *testing.T) {
	doc := `{"type":"begin","ts":0,"name":"cec","span":1}
{"type":"begin","ts":1,"name":"fraig","span":2,"parent":1}
{"type":"count","ts":2,"name":"fraig.merges","span":2,"value":3}
{"type":"gauge","ts":3,"name":"bdd.nodes","span":2,"value":100}
{"type":"instant","ts":4,"name":"budget.slice","span":2,"attrs":{"pending":4}}
{"type":"end","ts":5,"name":"fraig","span":2,"dur":4}
{"type":"end","ts":6,"name":"cec","span":1,"dur":6}
`
	rep, err := lint(t, doc)
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if rep.Lines != 7 || rep.Spans != 2 || rep.MaxDepth != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"not json":           `{"type":`,
		"unknown type":       `{"type":"bogus","ts":0,"name":"x"}`,
		"missing name":       `{"type":"begin","ts":0,"span":1}`,
		"begin without span": `{"type":"begin","ts":0,"name":"x"}`,
		"unknown field":      `{"type":"begin","ts":0,"name":"x","span":1,"bogus":1}`,
		"orphan parent":      `{"type":"begin","ts":0,"name":"x","span":1,"parent":9}`,
		"end of unopened":    `{"type":"end","ts":0,"name":"x","span":7}`,
		"event on closed span": `{"type":"begin","ts":0,"name":"x","span":1}` + "\n" +
			`{"type":"end","ts":1,"name":"x","span":1}` + "\n" +
			`{"type":"count","ts":2,"name":"c","span":1,"value":1}`,
		"name mismatch": `{"type":"begin","ts":0,"name":"x","span":1}` + "\n" +
			`{"type":"end","ts":1,"name":"y","span":1}`,
		"span reuse": `{"type":"begin","ts":0,"name":"x","span":1}` + "\n" +
			`{"type":"end","ts":1,"name":"x","span":1}` + "\n" +
			`{"type":"begin","ts":2,"name":"x","span":1}`,
		"unended span": `{"type":"begin","ts":0,"name":"x","span":1}`,
		"negative ts":  `{"type":"gauge","ts":-1,"name":"x","value":1}`,
	}
	for label, doc := range cases {
		if _, err := lint(t, doc); err == nil {
			t.Errorf("%s: accepted invalid stream", label)
		}
	}
}
