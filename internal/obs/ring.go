package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// DefaultRingSize is the flight recorder's default capacity: the last
// 4096 events is a few screens of post-mortem context, and the ring's
// steady-state cost (one slot copy per event, zero allocations after
// warm-up) is cheap enough to leave on for every run.
const DefaultRingSize = 4096

// RingSink is the flight recorder: a bounded ring buffer retaining the
// last N events of a run. Unlike JSONLSink it does no I/O while the run
// is live — the buffer is only serialized (WriteJSONL / DumpFile) when
// something went wrong and a post-mortem artifact is wanted, typically
// a run ending Undecided, an error, or a recovered worker panic.
//
// Because the ring evicts oldest-first, a dump is generally a *suffix*
// of the trace: begins may be missing for spans whose end (or events)
// survived, and spans open at dump time have no end yet. WriteJSONL
// repairs both — synthesizing begin lines up front (parented at the
// root, marked with a synth attr) and end lines at the tail — so every
// dump validates against the same schema as a full trace
// (ValidateJSONL / cmd/tracelint) and loads in the same tooling.
type RingSink struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seen uint64 // total events offered, for the dump header
}

// NewRingSink returns a flight recorder keeping the last n events
// (n <= 0 selects DefaultRingSize).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit stores the event, evicting the oldest when full. The tracer
// serializes Emit calls, but dumps may race a live run (a debug-endpoint
// handler, a signal path), so the ring keeps its own mutex; one
// uncontended lock per event is noise next to the tracer's own.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	s.buf[s.next] = ev
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.seen++
	s.mu.Unlock()
}

// Close is a no-op: the ring stays readable after the tracer closes, so
// the CLI can decide to dump it after the verdict is known.
func (s *RingSink) Close() error { return nil }

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]Event(nil), s.buf[:s.next]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Dropped reports how many events were evicted from the ring.
func (s *RingSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return 0
	}
	return s.seen - uint64(len(s.buf))
}

// ringSpan accumulates what the repair pass knows about one span id.
type ringSpan struct {
	id      uint64
	begun   bool
	ended   bool
	name    string
	beginTS int64
	dur     int64 // from the end event, when present
	endTS   int64
}

// WriteJSONL serializes the ring as a schema-valid JSONL trace (see the
// type comment for the repair it applies). The output always satisfies
// ValidateJSONL, whatever suffix of the run the ring happened to retain.
func (s *RingSink) WriteJSONL(w io.Writer) error {
	evs := s.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	// Pass 1: per-span facts plus the dump's time bounds.
	spans := map[uint64]*ringSpan{}
	var order []uint64 // span ids in first-reference order, for determinism
	touch := func(id uint64) *ringSpan {
		sp := spans[id]
		if sp == nil {
			sp = &ringSpan{id: id}
			spans[id] = sp
			order = append(order, id)
		}
		return sp
	}
	var firstTS, lastTS int64
	for i, ev := range evs {
		if i == 0 || ev.TS < firstTS {
			firstTS = ev.TS
		}
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
		switch ev.Type {
		case EvBegin:
			sp := touch(ev.Span)
			sp.begun = true
			sp.name = ev.Name
			sp.beginTS = ev.TS
			if ev.Parent != 0 {
				touch(ev.Parent)
			}
		case EvEnd:
			sp := touch(ev.Span)
			sp.ended = true
			sp.endTS = ev.TS
			sp.dur = ev.Dur
			if sp.name == "" {
				sp.name = ev.Name
			}
		default:
			if ev.Span != 0 {
				touch(ev.Span)
			}
		}
	}
	if firstTS < 0 {
		firstTS = 0
	}

	// Synthetic begins for spans referenced without one in the ring.
	// They are parented at the root (their true parent is unknowable)
	// and flagged so tooling can tell repair from recording. Orphan ends
	// carry their dur, so the begin can sit where the span really
	// started; everything else opens at the dump's first timestamp.
	for _, id := range order {
		sp := spans[id]
		if sp.begun {
			continue
		}
		if sp.name == "" {
			sp.name = "span" // referenced only as a parent or by metrics
		}
		ts := firstTS
		if sp.ended && sp.dur > 0 {
			if t := sp.endTS - sp.dur; t >= 0 && t < ts {
				ts = t
			}
		}
		sp.beginTS = ts
		if err := enc.Encode(wireEvent{
			Type: EvBegin, TS: ts, Name: sp.name, Span: id,
			Attrs: map[string]any{"synth": int64(1)},
		}); err != nil {
			return err
		}
	}

	// The retained events, verbatim.
	for _, ev := range evs {
		if err := enc.Encode(wireEvent{
			Type: ev.Type, TS: ev.TS, Name: ev.Name, Span: ev.Span,
			Parent: ev.Parent, Dur: ev.Dur, Value: ev.Value, Attrs: attrMap(ev.Attrs),
		}); err != nil {
			return err
		}
	}

	// Synthetic ends for spans still open — the interesting ones in a
	// post-mortem: whatever was in flight when the run died.
	for _, id := range order {
		sp := spans[id]
		if sp.ended {
			continue
		}
		dur := lastTS - sp.beginTS
		if dur < 0 {
			dur = 0
		}
		if err := enc.Encode(wireEvent{
			Type: EvEnd, TS: lastTS, Name: sp.name, Span: id, Dur: dur,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the repaired trace to path (0644, truncating).
func (s *RingSink) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
