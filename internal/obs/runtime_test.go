package obs

import (
	"context"
	"math"
	"runtime/metrics"
	"testing"
)

// TestMemScopeZeroAllocNoTracer extends the pinned overhead contract to
// the memory scopes: with no tracer installed, SpanMem/End on the nil
// span allocate nothing and read no runtime counters.
func TestMemScopeZeroAllocNoTracer(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, "phase")
		m := SpanMem(sp)
		m.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-tracer MemScope path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestMemScopeEmitsGauges runs an allocating region under a traced span
// and checks the attribution gauges land on that span with plausible
// values.
func TestMemScopeEmitsGauges(t *testing.T) {
	var got []Event
	sink := &funcSink{fn: func(ev Event) { got = append(got, ev) }}
	ctx := WithTracer(context.Background(), New(sink))
	ctx, sp := Start(ctx, "phase")
	m := SpanMem(sp)
	waste := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		waste = append(waste, make([]byte, 16<<10))
	}
	_ = waste
	m.End()
	sp.End()

	vals := map[string]int64{}
	for _, ev := range got {
		if ev.Type == EvGauge && ev.Span == 1 {
			vals[ev.Name] = ev.Value
		}
	}
	for _, name := range []string{"mem.alloc_bytes", "mem.alloc_objects",
		"mem.gc_cycles", "mem.gc_pause_ns", "mem.heap_live_bytes"} {
		if _, ok := vals[name]; !ok {
			t.Fatalf("gauge %s missing; got %v", name, vals)
		}
	}
	// The runtime flushes per-P allocation stats lazily, so the delta can
	// trail the true count by a cache's worth; assert at least half the
	// demonstrably allocated volume was attributed.
	if vals["mem.alloc_bytes"] < 32*16<<10 {
		t.Errorf("mem.alloc_bytes = %d, want >= %d (half the bytes the region allocated)",
			vals["mem.alloc_bytes"], 32*16<<10)
	}
	if vals["mem.alloc_objects"] < 32 {
		t.Errorf("mem.alloc_objects = %d, want >= 32", vals["mem.alloc_objects"])
	}
	if vals["mem.heap_live_bytes"] <= 0 {
		t.Errorf("mem.heap_live_bytes = %d, want > 0", vals["mem.heap_live_bytes"])
	}
	if vals["mem.gc_pause_ns"] < 0 {
		t.Errorf("mem.gc_pause_ns = %d, want >= 0 (cumulative histogram deltas cannot go backwards)",
			vals["mem.gc_pause_ns"])
	}
}

// TestHistTotalNS checks the pause-total estimator against a
// hand-built histogram, including the open-ended last bucket.
func TestHistTotalNS(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{2, 0, 1},
		Buckets: []float64{0, 1e-6, 1e-3, math.Inf(1)},
	}
	// 2 × 1e-6 s + 1 × 1e-3 s (lower bound of the +Inf bucket) = 1.002 ms
	want := int64(2*1e3 + 1e6)
	if got := histTotalNS(h); got != want {
		t.Fatalf("histTotalNS = %d, want %d", got, want)
	}
	if histTotalNS(nil) != 0 {
		t.Fatal("nil histogram must total 0")
	}
}

// funcSink adapts a function to the Sink interface for tests.
type funcSink struct{ fn func(Event) }

func (s *funcSink) Emit(ev Event) { s.fn(ev) }
func (s *funcSink) Close() error  { return nil }
