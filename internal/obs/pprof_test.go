package obs

import (
	"context"
	"runtime/pprof"
	"testing"
)

func labelValue(ctx context.Context, key string) (string, bool) {
	return pprof.Label(ctx, key)
}

// TestGoroutineLabelsFromBaggage checks that string baggage attributes
// become pprof labels, extras are appended, and restore reinstates the
// previous label set.
func TestGoroutineLabelsFromBaggage(t *testing.T) {
	ctx := WithBaggage(context.Background(),
		S("job_id", "job-42"), S("request_id", "req-7"), I("attempt", 3))

	lctx, restore := GoroutineLabels(ctx)
	if v, ok := labelValue(lctx, "job_id"); !ok || v != "job-42" {
		t.Fatalf("job_id label = %q, %v; want job-42", v, ok)
	}
	if v, ok := labelValue(lctx, "request_id"); !ok || v != "req-7" {
		t.Fatalf("request_id label = %q, %v; want req-7", v, ok)
	}
	// Non-string baggage is skipped, not stringified.
	if _, ok := labelValue(lctx, "attempt"); ok {
		t.Fatal("int baggage attr must not become a pprof label")
	}
	restore()

	// Phase label stacks on top of the job label.
	pctx, prestore := PhaseLabel(lctx, "fraig")
	if v, ok := labelValue(pctx, "phase"); !ok || v != "fraig" {
		t.Fatalf("phase label = %q, %v; want fraig", v, ok)
	}
	if v, ok := labelValue(pctx, "job_id"); !ok || v != "job-42" {
		t.Fatalf("job_id label lost under phase label: %q, %v", v, ok)
	}
	prestore()
}

// TestGoroutineLabelsNoBaggage pins the no-op fast path.
func TestGoroutineLabelsNoBaggage(t *testing.T) {
	ctx := context.Background()
	lctx, restore := GoroutineLabels(ctx)
	if lctx != ctx {
		t.Fatal("no baggage, no extras: context must be returned unchanged")
	}
	restore()
}
