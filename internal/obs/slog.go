package obs

import (
	"context"
	"log/slog"
)

// LogHandler is the correlated-logging half of the baggage contract: a
// slog.Handler wrapper that stamps the context's baggage attributes
// (see WithBaggage) onto every record it handles. Logging through a
// context that carries job_id therefore produces lines that join
// against the same job's span attributes with no call-site effort —
// the call site just uses the ctx-aware slog methods (InfoContext and
// friends).
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner so records pick up context baggage.
func NewLogHandler(inner slog.Handler) LogHandler {
	return LogHandler{inner: inner}
}

// NewLogger is the one-call form: a *slog.Logger whose records are
// stamped with context baggage before reaching inner.
func NewLogger(inner slog.Handler) *slog.Logger {
	return slog.New(NewLogHandler(inner))
}

// Enabled defers to the wrapped handler.
func (h LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle appends the context's baggage attrs to the record, then
// delegates. The record is cloned by value per slog's contract, so the
// caller's record is untouched.
func (h LogHandler) Handle(ctx context.Context, r slog.Record) error {
	for _, a := range BaggageFrom(ctx) {
		if a.IsStr {
			r.AddAttrs(slog.String(a.Key, a.Str))
		} else {
			r.AddAttrs(slog.Int64(a.Key, a.Int))
		}
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs keeps the wrapper on the derived handler.
func (h LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup keeps the wrapper on the derived handler.
func (h LogHandler) WithGroup(name string) slog.Handler {
	return LogHandler{inner: h.inner.WithGroup(name)}
}
