package seqbdd

import (
	"fmt"
	"time"

	"seqver/internal/bdd"
	"seqver/internal/netlist"
)

// Trace extraction: when the product traversal finds a distinguishing
// reachable state, verification engineers need the input sequence that
// drives the machines there from reset. This file re-runs the traversal
// keeping the onion rings (frontier per step) and walks them backwards
// extracting one concrete input vector per step.

// TraceResult extends Result with a concrete error trace.
type TraceResult struct {
	Result
	// Inputs is the distinguishing sequence: Inputs[t] assigns circuit
	// 1's primary inputs (by name) at cycle t. Applying it from the
	// all-zero reset makes some output differ at the last cycle.
	Inputs []map[string]bool
}

// CheckWithTrace performs the reset-equivalence traversal and, on
// inequivalence, returns a concrete distinguishing input sequence.
func CheckWithTrace(c1, c2 *netlist.Circuit, opt Options) (*TraceResult, error) {
	start := time.Now()
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 500_000
	}
	if len(c1.Inputs) != len(c2.Inputs) || len(c1.Outputs) != len(c2.Outputs) {
		return nil, fmt.Errorf("seqbdd: interface mismatch")
	}
	m := bdd.New(0)
	m.MaxNodes = opt.MaxNodes
	res := &TraceResult{}
	defer func() {
		res.Elapsed = time.Since(start)
		res.PeakNodes = m.NumNodes()
	}()
	var verdict Verdict
	var trace []map[string]bool
	err := bdd.CatchLimit(func() {
		verdict, trace = traverseWithRings(m, c1, c2, &res.Result)
	})
	if err != nil {
		res.Verdict = Blowup
		return res, nil
	}
	res.Verdict = verdict
	res.Inputs = trace
	return res, nil
}

func traverseWithRings(m *bdd.Manager, c1, c2 *netlist.Circuit, res *Result) (Verdict, []map[string]bool) {
	inVar := make(map[string]int)
	var inNames []string
	for _, id := range c1.Inputs {
		name := c1.Nodes[id].Name
		inVar[name] = m.AddVar()
		inNames = append(inNames, name)
	}
	for i, id := range c2.Inputs {
		name := c2.Nodes[id].Name
		if _, ok := inVar[name]; !ok {
			inVar[name] = inVar[c1.Nodes[c1.Inputs[i]].Name]
		}
	}
	m1, err := buildMachine(m, c1, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit)
	}
	m2, err := buildMachine(m, c2, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit)
	}
	bad := bdd.False
	for i := range m1.outs {
		bad = m.Or(bad, m.Xor(m1.outs[i], m2.outs[i]))
	}
	trans := bdd.True
	for i := range m1.next {
		trans = m.And(trans, m.Xnor(m.Var(m1.nextVar[i]), m1.next[i]))
	}
	for i := range m2.next {
		trans = m.And(trans, m.Xnor(m.Var(m2.nextVar[i]), m2.next[i]))
	}
	var stateVars []int
	stateVars = append(stateVars, m1.current...)
	stateVars = append(stateVars, m2.current...)
	var quantVars []int
	for _, v := range inVar {
		quantVars = append(quantVars, v)
	}
	quantVars = append(quantVars, stateVars...)
	cube := m.CubeVars(dedup(quantVars))
	sub := make(map[int]bdd.Ref)
	subBack := make(map[int]bdd.Ref) // current -> next (for preimage constraint)
	for i := range m1.current {
		sub[m1.nextVar[i]] = m.Var(m1.current[i])
		subBack[m1.current[i]] = m.Var(m1.nextVar[i])
	}
	for i := range m2.current {
		sub[m2.nextVar[i]] = m.Var(m2.current[i])
		subBack[m2.current[i]] = m.Var(m2.nextVar[i])
	}

	init := bdd.True
	for _, v := range stateVars {
		init = m.And(init, m.NVar(v))
	}

	rings := []bdd.Ref{init}
	frontier := init
	reached := init
	hit := -1
	for {
		if m.And(frontier, bad) != bdd.False {
			hit = len(rings) - 1
			break
		}
		res.Iterations++
		img := m.VecCompose(m.AndExists(frontier, trans, cube), sub)
		newStates := m.And(img, reached.Not())
		if newStates == bdd.False {
			break
		}
		reached = m.Or(reached, newStates)
		frontier = newStates
		rings = append(rings, newStates)
	}
	if hit < 0 {
		nState := len(stateVars)
		res.States = m.SatCount(reached, m.NumVars()) / pow2(m.NumVars()-nState)
		return Equivalent, nil
	}

	// Backward walk: pick a bad state in ring[hit], then per step find
	// (state in ring[t-1], input) reaching the current target.
	target := m.And(rings[hit], bad)
	targetState := pickState(m, target, stateVars)
	var seq []map[string]bool

	// Inputs at the failing cycle itself: any assignment making `bad`
	// true at targetState.
	lastIn := m.And(withState(m, bad, targetState, stateVars), bdd.True)
	finalInputs := pickInputs(m, lastIn, inVar, inNames)

	for t := hit; t > 0; t-- {
		// Constraint: current state in ring[t-1], next state == target.
		tgtNext := bdd.True
		for v, val := range targetState {
			lit := subBack[v]
			if !val {
				lit = lit.Not()
			}
			tgtNext = m.And(tgtNext, lit)
		}
		rel := m.And(m.And(rings[t-1], trans), tgtNext)
		if rel == bdd.False {
			panic(bdd.ErrNodeLimit) // internal inconsistency; degrade to blowup
		}
		assign := m.AnySat(rel)
		step := make(map[string]bool, len(inNames))
		for _, n := range inNames {
			step[n] = assign[inVar[n]]
		}
		seq = append([]map[string]bool{step}, seq...)
		// New target: the chosen predecessor state.
		newTarget := make(map[int]bool, len(stateVars))
		for _, v := range stateVars {
			newTarget[v] = assign[v]
		}
		targetState = newTarget
	}
	seq = append(seq, finalInputs)
	return Inequivalent, seq
}

// pickState extracts one concrete assignment of the state variables from
// a nonempty set.
func pickState(m *bdd.Manager, set bdd.Ref, stateVars []int) map[int]bool {
	assign := m.AnySat(set)
	out := make(map[int]bool, len(stateVars))
	for _, v := range stateVars {
		out[v] = assign[v]
	}
	return out
}

// withState cofactors f by a concrete state assignment.
func withState(m *bdd.Manager, f bdd.Ref, state map[int]bool, stateVars []int) bdd.Ref {
	for _, v := range stateVars {
		f = m.Cofactor(f, v, state[v])
	}
	return f
}

func pickInputs(m *bdd.Manager, f bdd.Ref, inVar map[string]int, names []string) map[string]bool {
	assign := m.AnySat(f)
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = assign[inVar[n]]
	}
	return out
}
