package seqbdd

import (
	"testing"

	"seqver/internal/netlist"
	"seqver/internal/retime"
	"seqver/internal/sim"
)

// counterN builds an n-bit binary counter with enable input and the MSB
// as output.
func counterN(n int) *netlist.Circuit {
	c := netlist.New("cnt")
	en := c.AddInput("en")
	var bits []int
	for i := 0; i < n; i++ {
		bits = append(bits, c.AddLatch("b"+string(rune('0'+i)), 0))
	}
	carry := en
	for i := 0; i < n; i++ {
		sum := c.AddGate("", netlist.OpXor, bits[i], carry)
		carry = c.AddGate("", netlist.OpAnd, bits[i], carry)
		c.SetLatchData(bits[i], sum)
	}
	c.AddOutput("msb", bits[n-1])
	return c
}

func TestSelfEquivalence(t *testing.T) {
	c := counterN(4)
	res, err := CheckResetEquivalence(c, c.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.States != 16*16 && res.States != 16 {
		// Product of two identical counters stays on the diagonal:
		// exactly 16 reachable product states.
		t.Logf("states = %v", res.States)
	}
	if res.States != 16 {
		t.Fatalf("reachable product states = %v, want 16 (diagonal)", res.States)
	}
}

func TestInequivalentCounter(t *testing.T) {
	c1 := counterN(3)
	c2 := counterN(3)
	// Mutate: output the complement of the MSB.
	msb := c2.Outputs[0].Node
	inv := c2.AddGate("inv", netlist.OpNot, msb)
	c2.Outputs[0].Node = inv
	res, err := CheckResetEquivalence(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inequivalent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestDeepBugFound(t *testing.T) {
	// A bug only visible after 2^(n-1) steps: MSB xor'ed wrongly.
	c1 := counterN(4)
	c2 := netlist.New("cnt")
	en := c2.AddInput("en")
	var bits []int
	for i := 0; i < 4; i++ {
		bits = append(bits, c2.AddLatch("b"+string(rune('0'+i)), 0))
	}
	carry := en
	for i := 0; i < 4; i++ {
		var sum int
		if i == 3 {
			sum = c2.AddGate("", netlist.OpOr, bits[i], carry) // bug
		} else {
			sum = c2.AddGate("", netlist.OpXor, bits[i], carry)
		}
		nc := c2.AddGate("", netlist.OpAnd, bits[i], carry)
		c2.SetLatchData(bits[i], sum)
		carry = nc
	}
	c2.AddOutput("msb", bits[3])
	res, err := CheckResetEquivalence(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The OR bug differs from XOR only when bit3=1 and carry=1, i.e.
	// wrap-around at step 16: traversal must reach it.
	if res.Verdict != Inequivalent {
		t.Fatalf("verdict = %v after %d iterations", res.Verdict, res.Iterations)
	}
}

func TestRetimedEquivalence(t *testing.T) {
	// Retiming preserves reset equivalence only up to latency/encoding;
	// here retiming an acyclic pipeline keeps the all-zero reset
	// behaviour identical because the moved latches still power up zero
	// and the logic is inverter-free along moved paths... use an
	// AND-pipeline where zero state maps to zero state.
	c := netlist.New("pipe")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate("g", netlist.OpAnd, a, b)
	l1 := c.AddLatch("l1", g)
	l2 := c.AddLatch("l2", l1)
	c.AddOutput("o", l2)
	res1, err := retime.MinPeriod(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckResetEquivalence(c, res1.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestBlowupUnderBudget(t *testing.T) {
	// 14-bit counters with a tiny node budget must blow up, the cliff
	// the paper's technique avoids.
	c := counterN(14)
	res, err := CheckResetEquivalence(c, c.Clone(), Options{MaxNodes: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Blowup {
		t.Fatalf("verdict = %v, want blowup", res.Verdict)
	}
}

func TestEnabledLatchTraversal(t *testing.T) {
	mk := func() *netlist.Circuit {
		c := netlist.New("en")
		d := c.AddInput("d")
		e := c.AddInput("e")
		q := c.AddEnabledLatch("q", d, e)
		c.AddOutput("o", q)
		return c
	}
	res, err := CheckResetEquivalence(mk(), mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestPartitionedMatchesMonolithic(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		c1 := counterN(n)
		c2 := counterN(n)
		r1, err := CheckResetEquivalence(c1, c2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := CheckResetEquivalencePartitioned(c1, c2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Verdict != r2.Verdict {
			t.Fatalf("n=%d: monolithic %v vs partitioned %v", n, r1.Verdict, r2.Verdict)
		}
		if r1.States != r2.States {
			t.Fatalf("n=%d: reachable states %v vs %v", n, r1.States, r2.States)
		}
	}
}

func TestPartitionedFindsBug(t *testing.T) {
	c1 := counterN(4)
	c2 := counterN(4)
	inv := c2.AddGate("inv", netlist.OpNot, c2.Outputs[0].Node)
	c2.Outputs[0].Node = inv
	res, err := CheckResetEquivalencePartitioned(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inequivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestPartitionedAgreesUnderBudget(t *testing.T) {
	// Both schedules complete a 10-bit counter pair under a 1M budget
	// and agree on verdict and reachable state count. (The AndExists
	// schedule of the "monolithic" path is in fact the stronger one on
	// carry-chain circuits; see partition.go.)
	c := counterN(10)
	budget := Options{MaxNodes: 1_000_000}
	mono, err := CheckResetEquivalence(c, c.Clone(), budget)
	if err != nil {
		t.Fatal(err)
	}
	part, err := CheckResetEquivalencePartitioned(c, c.Clone(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Verdict != Equivalent || part.Verdict != Equivalent {
		t.Fatalf("verdicts: mono %v, part %v", mono.Verdict, part.Verdict)
	}
	if mono.States != part.States {
		t.Fatalf("states: mono %v, part %v", mono.States, part.States)
	}
}

func TestTraceReproducesBug(t *testing.T) {
	// The deep-bug counter: the trace must drive both machines from
	// reset to a cycle where the outputs differ, confirmed by simulation.
	c1 := counterN(4)
	c2 := counterN(4)
	inv := c2.AddGate("inv", netlist.OpNot, c2.Outputs[0].Node)
	c2.Outputs[0].Node = inv
	res, err := CheckWithTrace(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inequivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Inputs) == 0 {
		t.Fatal("no trace returned")
	}
	s1, s2 := sim.New(c1), sim.New(c2)
	st1 := make(sim.State, len(c1.Latches))
	st2 := make(sim.State, len(c2.Latches))
	names := c1.InputNames()
	var last1, last2 []bool
	for _, step := range res.Inputs {
		in := make([]bool, len(names))
		for i, n := range names {
			in[i] = step[n]
		}
		last1, st1 = s1.Step(in, st1)
		last2, st2 = s2.Step(in, st2)
	}
	diff := false
	for i := range last1 {
		if last1[i] != last2[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("trace of %d cycles does not distinguish", len(res.Inputs))
	}
}

func TestTraceEquivalentHasNoInputs(t *testing.T) {
	c := counterN(3)
	res, err := CheckWithTrace(c, c.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent || res.Inputs != nil {
		t.Fatalf("res = %+v", res)
	}
}

func TestTraceDeepWrapAround(t *testing.T) {
	// A bug visible only after 2^(n-1) steps: the trace must be that
	// long (the counter wraps at step 8 for n=4... MSB OR-bug fires when
	// carry into the MSB coincides with MSB=1).
	c1 := counterN(4)
	c2 := netlist.New("cnt")
	en := c2.AddInput("en")
	var bits []int
	for i := 0; i < 4; i++ {
		bits = append(bits, c2.AddLatch("b"+string(rune('0'+i)), 0))
	}
	carry := en
	for i := 0; i < 4; i++ {
		var sum int
		if i == 3 {
			sum = c2.AddGate("", netlist.OpOr, bits[i], carry)
		} else {
			sum = c2.AddGate("", netlist.OpXor, bits[i], carry)
		}
		nc := c2.AddGate("", netlist.OpAnd, bits[i], carry)
		c2.SetLatchData(bits[i], sum)
		carry = nc
	}
	c2.AddOutput("msb", bits[3])
	res, err := CheckWithTrace(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inequivalent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Inputs) < 10 {
		t.Fatalf("trace suspiciously short (%d cycles) for a wrap-around bug", len(res.Inputs))
	}
}
