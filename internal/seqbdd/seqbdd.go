// Package seqbdd implements the classical BDD-based symbolic
// product-machine traversal (Coudert-Madre / Touati et al., the paper's
// references [13, 14]) as the sequential-equivalence baseline the paper
// argues against: it works on small designs and blows up well below
// industrial sizes, which is precisely the motivation for the CBF/EDBF
// reduction. A node budget turns the blowup into a reported outcome
// instead of an unbounded computation.
package seqbdd

import (
	"fmt"
	"time"

	"seqver/internal/bdd"
	"seqver/internal/netlist"
	"seqver/internal/unate"
)

// Verdict is the outcome of a traversal-based check.
type Verdict int

const (
	// Blowup means the node budget was exhausted.
	Blowup Verdict = iota
	// Equivalent: outputs agree on every state reachable from the
	// given/assumed initial states.
	Equivalent
	// Inequivalent: some reachable state + input distinguishes them.
	Inequivalent
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case Inequivalent:
		return "inequivalent"
	}
	return "blowup"
}

// Result reports the traversal outcome.
type Result struct {
	Verdict    Verdict
	Iterations int     // image steps until fixpoint (or blowup)
	States     float64 // reachable product states (when completed)
	PeakNodes  int
	Elapsed    time.Duration
}

// Options tunes the traversal.
type Options struct {
	MaxNodes int // BDD node budget (default 500k)
}

// CheckResetEquivalence decides reset equivalence of two circuits with
// identical input interfaces (matched by name) from the all-zero initial
// state of each, by symbolic breadth-first traversal of the product
// machine. This is the "compose the machines and traverse the state
// space" baseline of Section 2.
func CheckResetEquivalence(c1, c2 *netlist.Circuit, opt Options) (*Result, error) {
	start := time.Now()
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 500_000
	}
	if len(c1.Inputs) != len(c2.Inputs) {
		return nil, fmt.Errorf("seqbdd: input counts differ")
	}
	if len(c1.Outputs) != len(c2.Outputs) {
		return nil, fmt.Errorf("seqbdd: output counts differ")
	}

	m := bdd.New(0)
	m.MaxNodes = opt.MaxNodes
	res := &Result{}
	defer func() {
		res.Elapsed = time.Since(start)
		res.PeakNodes = m.NumNodes()
	}()

	var verdict Verdict
	err := bdd.CatchLimit(func() {
		verdict = traverse(m, c1, c2, res)
	})
	if err != nil {
		res.Verdict = Blowup
		return res, nil
	}
	res.Verdict = verdict
	return res, nil
}

// machine holds one circuit's symbolic model over a shared manager.
type machine struct {
	next    []bdd.Ref // next-state function per latch
	outs    []bdd.Ref // output functions
	current []int     // current-state variable per latch
	nextVar []int     // next-state variable per latch
}

func buildMachine(m *bdd.Manager, c *netlist.Circuit, inVar map[string]int) (*machine, error) {
	// Assign current/next state vars interleaved for this machine.
	mach := &machine{}
	nodeVar := make(map[int]int)
	for _, id := range c.Inputs {
		v, ok := inVar[c.Nodes[id].Name]
		if !ok {
			return nil, fmt.Errorf("seqbdd: unmatched input %q", c.Nodes[id].Name)
		}
		nodeVar[id] = v
	}
	for _, id := range c.Latches {
		cur := m.AddVar()
		nxt := m.AddVar()
		mach.current = append(mach.current, cur)
		mach.nextVar = append(mach.nextVar, nxt)
		nodeVar[id] = cur
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make([]bdd.Ref, len(c.Nodes))
	for id, v := range nodeVar {
		val[id] = m.Var(v)
	}
	for _, id := range order {
		n := c.Nodes[id]
		if n.Kind != netlist.KindGate {
			continue
		}
		fins := make([]bdd.Ref, len(n.Fanins))
		for i, f := range n.Fanins {
			fins[i] = val[f]
		}
		val[id] = unate.GateBDD(m, n, fins)
	}
	for i, id := range c.Latches {
		n := c.Nodes[id]
		nx := val[n.Data()]
		if n.Enable != netlist.NoEnable {
			nx = m.Ite(val[n.Enable], nx, m.Var(mach.current[i]))
		}
		mach.next = append(mach.next, nx)
	}
	for _, o := range c.Outputs {
		mach.outs = append(mach.outs, val[o.Node])
	}
	return mach, nil
}

func traverse(m *bdd.Manager, c1, c2 *netlist.Circuit, res *Result) Verdict {
	// Shared input variables first in the order.
	inVar := make(map[string]int)
	for _, id := range c1.Inputs {
		inVar[c1.Nodes[id].Name] = m.AddVar()
	}
	// Positional fallback: if c2's names differ, match by position.
	for i, id := range c2.Inputs {
		name := c2.Nodes[id].Name
		if _, ok := inVar[name]; !ok {
			inVar[name] = inVar[c1.Nodes[c1.Inputs[i]].Name]
		}
	}
	m1, err := buildMachine(m, c1, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit) // interface mismatch surfaces as blowup-free error upstream
	}
	m2, err := buildMachine(m, c2, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit)
	}

	// Output miter: some pair of outputs differs.
	bad := bdd.False
	for i := range m1.outs {
		bad = m.Or(bad, m.Xor(m1.outs[i], m2.outs[i]))
	}

	// Transition relation as a conjunction (monolithic: the 1990s
	// baseline; partitioning would stretch it, but the point of the
	// experiment is the cliff).
	trans := bdd.True
	for i := range m1.next {
		trans = m.And(trans, m.Xnor(m.Var(m1.nextVar[i]), m1.next[i]))
	}
	for i := range m2.next {
		trans = m.And(trans, m.Xnor(m.Var(m2.nextVar[i]), m2.next[i]))
	}

	// Quantification cubes and next->current substitution.
	var quantVars []int
	for _, v := range inVar {
		quantVars = append(quantVars, v)
	}
	quantVars = append(quantVars, m1.current...)
	quantVars = append(quantVars, m2.current...)
	cube := m.CubeVars(dedup(quantVars))
	sub := make(map[int]bdd.Ref)
	for i := range m1.current {
		sub[m1.nextVar[i]] = m.Var(m1.current[i])
	}
	for i := range m2.current {
		sub[m2.nextVar[i]] = m.Var(m2.current[i])
	}

	// Initial state: all zero for both machines.
	reached := bdd.True
	for _, v := range m1.current {
		reached = m.And(reached, m.NVar(v))
	}
	for _, v := range m2.current {
		reached = m.And(reached, m.NVar(v))
	}

	frontier := reached
	for {
		// Check the miter on the frontier.
		if m.And(frontier, bad) != bdd.False {
			return Inequivalent
		}
		res.Iterations++
		img := m.AndExists(frontier, trans, cube)
		img = m.VecCompose(img, sub)
		newStates := m.And(img, reached.Not())
		if newStates == bdd.False {
			break
		}
		reached = m.Or(reached, newStates)
		frontier = newStates
	}
	nState := len(m1.current) + len(m2.current)
	res.States = m.SatCount(reached, m.NumVars()) /
		pow2(m.NumVars()-nState)
	return Equivalent
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

func dedup(vs []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
