package seqbdd

import (
	"time"

	"seqver/internal/bdd"
	"seqver/internal/netlist"
)

// This file adds the explicitly partitioned transition-relation
// traversal: one conjunct per latch, combined left-to-right with
// variables quantified as soon as no remaining conjunct mentions them
// (Touati et al. [13]). Note that the "monolithic" traversal in
// seqbdd.go already interleaves conjunction and quantification through
// AndExists, which on most circuits is the stronger schedule; the
// partitioned variant is kept as the textbook alternative and for the
// baseline ablation — neither escapes the exponential cliff that
// motivates the paper's combinational reduction.

// CheckResetEquivalencePartitioned behaves like CheckResetEquivalence
// but uses the explicit per-latch partitioning described above.
func CheckResetEquivalencePartitioned(c1, c2 *netlist.Circuit, opt Options) (*Result, error) {
	start := time.Now()
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 500_000
	}
	m := bdd.New(0)
	m.MaxNodes = opt.MaxNodes
	res := &Result{}
	defer func() {
		res.Elapsed = time.Since(start)
		res.PeakNodes = m.NumNodes()
	}()
	var verdict Verdict
	err := bdd.CatchLimit(func() {
		verdict = traversePartitioned(m, c1, c2, res)
	})
	if err != nil {
		res.Verdict = Blowup
		return res, nil
	}
	res.Verdict = verdict
	return res, nil
}

func traversePartitioned(m *bdd.Manager, c1, c2 *netlist.Circuit, res *Result) Verdict {
	inVar := make(map[string]int)
	for _, id := range c1.Inputs {
		inVar[c1.Nodes[id].Name] = m.AddVar()
	}
	for i, id := range c2.Inputs {
		name := c2.Nodes[id].Name
		if _, ok := inVar[name]; !ok {
			inVar[name] = inVar[c1.Nodes[c1.Inputs[i]].Name]
		}
	}
	m1, err := buildMachine(m, c1, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit)
	}
	m2, err := buildMachine(m, c2, inVar)
	if err != nil {
		panic(bdd.ErrNodeLimit)
	}

	bad := bdd.False
	for i := range m1.outs {
		bad = m.Or(bad, m.Xor(m1.outs[i], m2.outs[i]))
	}

	// One conjunct per latch: t_i = (s_i' XNOR next_i).
	type conjunct struct {
		rel bdd.Ref
		sup map[int]bool
	}
	var parts []conjunct
	addPart := func(nv int, next bdd.Ref) {
		rel := m.Xnor(m.Var(nv), next)
		sup := make(map[int]bool)
		for _, v := range m.Support(rel) {
			sup[v] = true
		}
		parts = append(parts, conjunct{rel, sup})
	}
	for i := range m1.next {
		addPart(m1.nextVar[i], m1.next[i])
	}
	for i := range m2.next {
		addPart(m2.nextVar[i], m2.next[i])
	}

	// Variables to quantify: inputs + current-state vars.
	quantSet := make(map[int]bool)
	for _, v := range inVar {
		quantSet[v] = true
	}
	for _, v := range m1.current {
		quantSet[v] = true
	}
	for _, v := range m2.current {
		quantSet[v] = true
	}

	sub := make(map[int]bdd.Ref)
	for i := range m1.current {
		sub[m1.nextVar[i]] = m.Var(m1.current[i])
	}
	for i := range m2.current {
		sub[m2.nextVar[i]] = m.Var(m2.current[i])
	}

	reached := bdd.True
	for _, v := range m1.current {
		reached = m.And(reached, m.NVar(v))
	}
	for _, v := range m2.current {
		reached = m.And(reached, m.NVar(v))
	}

	// image computes ∃quant. frontier ∧ part_1 ∧ ... ∧ part_k with early
	// quantification: after conjoining each part, any quantified
	// variable not appearing in the remaining parts is eliminated
	// immediately, keeping intermediate products small.
	image := func(frontier bdd.Ref) bdd.Ref {
		// Count remaining occurrences of each quantified variable.
		remaining := make(map[int]int)
		for v := range quantSet {
			remaining[v] = 0
		}
		for _, p := range parts {
			for v := range p.sup {
				if quantSet[v] {
					remaining[v]++
				}
			}
		}
		cur := frontier
		curSup := make(map[int]bool)
		for _, v := range m.Support(frontier) {
			curSup[v] = true
		}
		for _, p := range parts {
			// Quantify variables that appear only in cur (and no later
			// part) before conjoining — they are already dead.
			cur = m.And(cur, p.rel)
			for v := range p.sup {
				curSup[v] = true
				remaining[v]--
			}
			var deadVars []int
			for v := range curSup {
				if quantSet[v] && remaining[v] == 0 {
					deadVars = append(deadVars, v)
					delete(curSup, v)
				}
			}
			if len(deadVars) > 0 {
				cur = m.Exists(cur, m.CubeVars(sortedInts(deadVars)))
			}
		}
		// Any quantified variables left (e.g. inputs unused by parts).
		var rest []int
		for v := range curSup {
			if quantSet[v] {
				rest = append(rest, v)
			}
		}
		if len(rest) > 0 {
			cur = m.Exists(cur, m.CubeVars(sortedInts(rest)))
		}
		return cur
	}

	frontier := reached
	for {
		if m.And(frontier, bad) != bdd.False {
			return Inequivalent
		}
		res.Iterations++
		img := m.VecCompose(image(frontier), sub)
		newStates := m.And(img, reached.Not())
		if newStates == bdd.False {
			break
		}
		reached = m.Or(reached, newStates)
		frontier = newStates
	}
	nState := len(m1.current) + len(m2.current)
	res.States = m.SatCount(reached, m.NumVars()) / pow2(m.NumVars()-nState)
	return Equivalent
}

func sortedInts(vs []int) []int {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	return vs
}
