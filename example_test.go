package seqver_test

import (
	"fmt"

	"seqver"
)

// ExampleVerifyAcyclic shows the core reduction: a pipeline and its
// retimed+resynthesized version are proven exact-3-valued equivalent by
// unrolling both into Clocked Boolean Functions and running the
// combinational checker.
func ExampleVerifyAcyclic() {
	golden := seqver.NewCircuit("golden")
	a := golden.AddInput("a")
	b := golden.AddInput("b")
	x := golden.AddGate("x", seqver.OpXor, a, b)
	l1 := golden.AddLatch("l1", x)
	l2 := golden.AddLatch("l2", l1)
	golden.AddOutput("o", l2)

	rt, _ := seqver.MinPeriodRetime(golden)
	opt, _ := seqver.Synthesize(rt.Circuit)

	rep, _ := seqver.VerifyAcyclic(golden, opt, seqver.Options{})
	fmt.Println(rep.Method, rep.Result.Verdict)
	// Output: cbf equivalent
}

// ExamplePrepare shows feedback-constraint satisfaction: the toggle
// latch (binate in itself) must be exposed, while the conditional-update
// register can be re-modeled as a load-enabled latch in unate-aware mode.
func ExamplePrepare() {
	c := seqver.NewCircuit("fsm")
	en := c.AddInput("en")
	d := c.AddInput("d")
	hold := c.AddLatch("hold", 0)
	ld := c.AddGate("ld", seqver.OpAnd, en, d)
	nen := c.AddGate("nen", seqver.OpNot, en)
	hd := c.AddGate("hd", seqver.OpAnd, nen, hold)
	c.SetLatchData(hold, c.AddGate("hn", seqver.OpOr, ld, hd))
	tog := c.AddLatch("tog", 0)
	c.SetLatchData(tog, c.AddGate("tn", seqver.OpXor, tog, en))
	o := c.AddGate("o", seqver.OpAnd, hold, tog)
	c.AddOutput("o", o)

	p, _ := seqver.Prepare(c, seqver.PrepareOptions{UnateAware: true})
	fmt.Println("modeled:", p.Modeled)
	fmt.Println("exposed:", p.Exposed)
	// Output:
	// modeled: [hold]
	// exposed: [tog]
}

// ExampleReplayCounterexample shows bug diagnosis: an inequivalence is
// replayed as a concrete input sequence with the failing cycle/output.
func ExampleReplayCounterexample() {
	mk := func(op seqver.Op) *seqver.Circuit {
		c := seqver.NewCircuit("m")
		a := c.AddInput("a")
		b := c.AddInput("b")
		g := c.AddGate("g", op, a, b)
		l := c.AddLatch("l", g)
		c.AddOutput("o", l)
		return c
	}
	golden, buggy := mk(seqver.OpAnd), mk(seqver.OpOr)
	rep, _ := seqver.VerifyAcyclic(golden, buggy, seqver.Options{})
	replay, _ := seqver.ReplayCounterexample(golden, buggy, rep.Result.Counterexample)
	fmt.Println(rep.Result.Verdict, "at", replay.Output, "cycle", replay.Cycle)
	// Output: inequivalent at o cycle 1
}
