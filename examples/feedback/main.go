// Feedback: the Section 6 story on a small controller. The design mixes
// a conditional-update register (next = en·d + ¬en·x — positive unate in
// x, so Lemma 6.1 re-models it as a load-enabled latch), a toggle bit
// (binate: must be exposed), and pipeline registers. The example shows
// both preparation modes, the exposure they choose, and a full verify
// run after combinational optimization.
package main

import (
	"fmt"
	"log"

	"seqver"
)

func main() {
	c := build()
	fmt.Printf("controller: %d latches, %d gates\n", len(c.Latches), c.NumGates())

	// Classify the feedback latches (Lemma 6.1 analysis).
	reps, err := seqver.AnalyzeSelfLoops(c)
	must(err)
	for _, r := range reps {
		fmt.Printf("  latch %-6s self-loop=%v positive-unate=%v coupled=%v\n",
			c.Node(r.Latch).Name, r.SelfDep, r.Unate, r.OtherDep)
	}

	// Structural preparation (the paper's experimental mode): every
	// feedback latch is exposed.
	p1, err := seqver.Prepare(c, seqver.PrepareOptions{})
	must(err)
	fmt.Printf("structural prepare: exposed %v\n", p1.Exposed)

	// Unate-aware preparation: the hold register is re-modeled as a
	// load-enabled latch instead, shrinking the exposure set — the
	// refinement the paper predicts in its analysis (Section 8.1).
	p2, err := seqver.Prepare(c, seqver.PrepareOptions{UnateAware: true})
	must(err)
	fmt.Printf("unate-aware prepare: modeled %v, exposed %v\n", p2.Modeled, p2.Exposed)
	if len(p2.Exposed) >= len(p1.Exposed) {
		log.Fatal("feedback: unate-aware mode should expose fewer latches")
	}

	// Optimize the prepared circuit and verify. The modeled latch is
	// load-enabled now, so verification takes the EDBF path.
	opt, err := seqver.Synthesize(p2.Circuit)
	must(err)
	rep, err := seqver.VerifyAcyclic(p2.Circuit, opt, seqver.Options{})
	must(err)
	fmt.Printf("verify after synthesis: %v via %s in %v\n",
		rep.Result.Verdict, rep.Method, rep.Elapsed.Round(1e6))
	if rep.Result.Verdict != seqver.Equivalent {
		log.Fatal("feedback: expected equivalence")
	}
}

func build() *seqver.Circuit {
	c := seqver.NewCircuit("controller")
	d := c.AddInput("d")
	en := c.AddInput("en")
	req := c.AddInput("req")

	// Conditional-update register (Figure 14 shape).
	hold := c.AddLatch("hold", 0)
	ld := c.AddGate("ld", seqver.OpAnd, en, d)
	nen := c.AddGate("nen", seqver.OpNot, en)
	hd := c.AddGate("hd", seqver.OpAnd, nen, hold)
	c.SetLatchData(hold, c.AddGate("hn", seqver.OpOr, ld, hd))

	// Toggle bit: x' = x XOR req (binate in x).
	tog := c.AddLatch("tog", 0)
	c.SetLatchData(tog, c.AddGate("tn", seqver.OpXor, tog, req))

	// Pipeline register on the datapath.
	stage := c.AddGate("stage", seqver.OpXor, hold, d)
	pipe := c.AddLatch("pipe", stage)

	grant := c.AddGate("grant", seqver.OpAnd, pipe, c.AddGate("nt", seqver.OpNot, tog))
	c.AddOutput("grant", grant)
	c.AddOutput("state", hold)
	c.AddOutput("phase", tog)
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
