// Budget: graceful degradation under a wall-clock budget. A hard
// combinational miter (two 8x8 array multipliers accumulating their
// partial products in opposite row orders — equal functions, disjoint
// structure) is checked twice: a 50ms budget returns the structured
// Undecided verdict listing the unresolved outputs, and a generous
// budget proves equivalence with the same call. Verdicts are
// budget-dependent but never wrong.
package main

import (
	"fmt"
	"log"
	"time"

	"seqver"
)

// multiplier builds an n x n ripple-carry array multiplier; reverse
// flips the partial-product accumulation order.
func multiplier(n int, reverse bool) *seqver.Circuit {
	c := seqver.NewCircuit("mul")
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	zero := c.AddGate("", seqver.OpConst0)
	sum := make([]int, 2*n)
	for k := range sum {
		sum[k] = zero
	}
	for r := 0; r < n; r++ {
		i := r
		if reverse {
			i = n - 1 - r
		}
		carry := zero
		for j := 0; j < n; j++ {
			pp := c.AddGate("", seqver.OpAnd, a[i], b[j])
			k := i + j
			s1 := c.AddGate("", seqver.OpXor, sum[k], pp)
			s2 := c.AddGate("", seqver.OpXor, s1, carry)
			c1 := c.AddGate("", seqver.OpAnd, sum[k], pp)
			c2 := c.AddGate("", seqver.OpAnd, s1, carry)
			carry = c.AddGate("", seqver.OpOr, c1, c2)
			sum[k] = s2
		}
		for k := i + n; k < 2*n; k++ {
			s := c.AddGate("", seqver.OpXor, sum[k], carry)
			carry = c.AddGate("", seqver.OpAnd, sum[k], carry)
			sum[k] = s
		}
	}
	for k := 0; k < 2*n; k++ {
		c.AddOutput(fmt.Sprintf("p%d", k), sum[k])
	}
	return c
}

func main() {
	c1 := multiplier(8, false)
	c2 := multiplier(8, true)

	// Under a 50ms budget the hard middle product bits cannot be proved:
	// the check returns promptly with Undecided and names what is left.
	res, err := seqver.CheckCombinational(c1, c2, seqver.CECOptions{
		Engine: "portfolio",
		Budget: 50 * time.Millisecond,
	})
	must(err)
	fmt.Printf("budget 50ms:  %v in %v (%d outputs unresolved: %v ...)\n",
		res.Verdict, res.Elapsed.Round(time.Millisecond),
		len(res.UndecidedOutputs), res.UndecidedOutputs[:min(3, len(res.UndecidedOutputs))])
	if res.Verdict != seqver.Undecided {
		log.Fatal("budget: expected Undecided under a 50ms budget")
	}

	// The same call with a generous budget proves every output; the
	// portfolio race attributes each hard miter to the engine that won.
	res, err = seqver.CheckCombinational(c1, c2, seqver.CECOptions{
		Engine: "portfolio",
		Budget: 5 * time.Minute,
	})
	must(err)
	fmt.Printf("budget 5m:    %v in %v\n", res.Verdict, res.Elapsed.Round(time.Millisecond))
	if p := res.Stats.Portfolio; p != nil {
		fmt.Printf("portfolio:    sat %d wins, bdd %d wins, %d unresolved\n",
			p.SATWins, p.BDDWins, p.Unresolved)
	}
	if res.Verdict != seqver.Equivalent {
		log.Fatal("budget: expected Equivalent under a generous budget")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
