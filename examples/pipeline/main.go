// Pipeline: the Figure 6 workload. A multi-stage pipelined datapath with
// deliberately unbalanced stages is rebalanced by retiming — something
// combinational optimization alone cannot do because the latches are in
// the way — and the result is verified with the CBF reduction. This is
// the scenario the paper's introduction motivates: retiming moves
// latches across fixed logic, synthesis then optimizes across the old
// latch boundaries, and verification must not rely on latch
// correspondence (none survives).
package main

import (
	"fmt"
	"log"

	"seqver"
)

func main() {
	c := build()
	fmt.Printf("pipeline: %d latches, %d gates\n", len(c.Latches), c.NumGates())

	// All delays are compared in the technology-mapped domain
	// (INV/NAND2/NOR2, unit delay) so the numbers are commensurable.
	_, rep0, err := seqver.TechMap(c)
	must(err)

	// Combinational-only optimization (latches fixed): the deep stage
	// still bounds the clock.
	combOnly, err := seqver.Synthesize(c)
	must(err)
	_, repComb, err := seqver.TechMap(combOnly)
	must(err)

	// Retiming + synthesis: latches migrate into the deep stage.
	both, err := seqver.Synthesize(c)
	must(err)
	rt2, err := seqver.MinPeriodRetime(both)
	must(err)
	_, repBoth, err := seqver.TechMap(rt2.Circuit)
	must(err)

	fmt.Printf("mapped clock period: original %d | synthesis-only %d | retime+synthesis %d\n",
		rep0.Delay, repComb.Delay, repBoth.Delay)
	if repBoth.Delay >= repComb.Delay {
		fmt.Println("note: this seed did not show a strict win; unusual")
	}

	// No latch in the result corresponds by name or position to one in
	// c: only the CBF reduction can verify this pair combinationally.
	rep, err := seqver.VerifyAcyclic(c, rt2.Circuit, seqver.Options{})
	must(err)
	fmt.Printf("verification: %v via %s in %v (sequential depth %d)\n",
		rep.Result.Verdict, rep.Method, rep.Elapsed.Round(1e6), rep.Depth)
	if rep.Result.Verdict != seqver.Equivalent {
		log.Fatal("pipeline: optimization broke the design")
	}
}

// build makes a 3-stage, 6-bit pipeline where stage 2 is much deeper
// than stages 1 and 3.
func build() *seqver.Circuit {
	c := seqver.NewCircuit("pipe6")
	const w = 6
	var cur []int
	for i := 0; i < w; i++ {
		cur = append(cur, c.AddInput(fmt.Sprintf("in%d", i)))
	}
	stageDepths := []int{1, 7, 1} // unbalanced on purpose
	g := 0
	for s, depth := range stageDepths {
		vals := append([]int(nil), cur...)
		for d := 0; d < depth; d++ {
			next := make([]int, w)
			for i := 0; i < w; i++ {
				op := seqver.OpXor
				if (i+d)%3 == 0 {
					op = seqver.OpNand
				}
				next[i] = c.AddGate(fmt.Sprintf("s%dg%d", s, g), op, vals[i], vals[(i+1)%w])
				g++
			}
			vals = next
		}
		for i := 0; i < w; i++ {
			vals[i] = c.AddLatch(fmt.Sprintf("r%d_%d", s, i), vals[i])
		}
		cur = vals
	}
	for i := 0; i < w; i++ {
		c.AddOutput(fmt.Sprintf("out%d", i), cur[i])
	}
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
