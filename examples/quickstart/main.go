// Quickstart: build a small sequential circuit, optimize it with
// retiming + combinational synthesis, and prove the result sequentially
// equivalent with the CBF reduction — the end-to-end happy path of the
// library.
package main

import (
	"fmt"
	"log"

	"seqver"
)

func main() {
	// A 2-stage design: out = not(nand(a XOR b, a)) delayed twice, with
	// all the logic in front of the first latch (badly balanced: the
	// clock period is set by the 3-gate front stage).
	c := seqver.NewCircuit("quickstart")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", seqver.OpXor, a, b)
	y := c.AddGate("y", seqver.OpNand, x, a)
	z := c.AddGate("z", seqver.OpNot, y)
	l1 := c.AddLatch("l1", z)
	l2 := c.AddLatch("l2", l1)
	c.AddOutput("o", l2)

	p0, err := seqver.ClockPeriod(c)
	must(err)
	fmt.Printf("original:  period %d, %d latches\n", p0, len(c.Latches))

	// Retime to the minimum period (Leiserson-Saxe, unit delays).
	rt, err := seqver.MinPeriodRetime(c)
	must(err)
	fmt.Printf("retimed:   period %d, %d latches, %d moves\n",
		rt.Period, rt.Latches, rt.Moves)

	// Combinational synthesis with latch positions fixed.
	opt, err := seqver.Synthesize(rt.Circuit)
	must(err)
	st := opt.Stats()
	fmt.Printf("optimized: %d gates, %d levels\n", st.Gates, st.Levels)

	// Verify: CBF unrolling reduces sequential equivalence to a
	// combinational check (Theorem 5.1 — exact, not conservative).
	rep, err := seqver.VerifyAcyclic(c, opt, seqver.Options{})
	must(err)
	fmt.Printf("verify:    %v via %s (depth %d, %d/%d unrolled gates, %v)\n",
		rep.Result.Verdict, rep.Method, rep.Depth,
		rep.UnrolledGates[0], rep.UnrolledGates[1], rep.Elapsed.Round(1e5))

	if rep.Result.Verdict != seqver.Equivalent {
		log.Fatal("quickstart: expected equivalence")
	}

	// And the checker is not a yes-box: a real bug is caught with a
	// counterexample over the unrolled input window.
	bug := opt.Clone()
	lid := bug.Latches[0]
	inv := bug.AddGate("bugInv", seqver.OpNot, bug.Node(lid).Data())
	bug.SetLatchData(lid, inv)
	rep, err = seqver.VerifyAcyclic(c, bug, seqver.Options{})
	must(err)
	fmt.Printf("bug check: %v (failing output %q)\n",
		rep.Result.Verdict, rep.Result.FailingOutput)
	if rep.Result.Verdict != seqver.Inequivalent {
		log.Fatal("quickstart: bug not detected")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
