// Multiclass: retiming load-enabled latches across classes — the tooling
// gap the paper's Section 8 laments ("we could not find a public domain
// retiming tool which could handle latches with enable signals... hence
// could not get optimization and verification results"). This example
// runs the Legl-style per-class reduction on a two-class design, then
// closes the loop with EDBF verification (Theorem 5.2's sound case).
package main

import (
	"fmt"
	"log"

	"seqver"
)

func main() {
	c := build()
	fmt.Printf("design: %d latches (%d classes), %d gates\n",
		len(c.Latches), 2, c.NumGates())

	p0, err := seqver.ClockPeriod(c)
	must(err)

	// Per-class passes: the regular bank and the load-enabled bank are
	// retimed alternately until the period stops improving.
	rt, err := seqver.MinPeriodRetimeMulti(c)
	must(err)
	fmt.Printf("retimed: period %d -> %d, latches %d -> %d (%d moves)\n",
		p0, rt.Period, len(c.Latches), rt.Latches, rt.Moves)
	if rt.Period >= p0 {
		log.Fatal("multiclass: expected a period improvement")
	}

	// Classes must survive: every latch is either regular or wired to
	// the original load-enable input.
	for _, id := range rt.Circuit.Latches {
		n := rt.Circuit.Node(id)
		if n.Enable != seqver.NoEnable && rt.Circuit.Node(n.Enable).Name != "le" {
			log.Fatalf("latch %s lost its class", n.Name)
		}
	}

	// EDBF verification: enabled latches force the event calculus; for a
	// retiming+synthesis pair it is sound (Lemma 5.2 keeps the event
	// sequences aligned).
	rep, err := seqver.VerifyAcyclic(c, rt.Circuit, seqver.Options{})
	must(err)
	fmt.Printf("verify: %v via %s in %v\n",
		rep.Result.Verdict, rep.Method, rep.Elapsed.Round(1e5))
	if rep.Method != "edbf" || rep.Result.Verdict != seqver.Equivalent {
		log.Fatal("multiclass: expected EDBF equivalence")
	}

	// Area mode: minimum latches at the original (relaxed) period.
	ma, err := seqver.MinAreaRetimeMulti(c, p0)
	must(err)
	fmt.Printf("min-area at period %d: %d latches\n", p0, ma.Latches)
}

// build makes a design with a deep regular-latch pipeline stage and a
// load-enabled side register bank, deliberately unbalanced.
func build() *seqver.Circuit {
	c := seqver.NewCircuit("twoclass")
	a := c.AddInput("a")
	b := c.AddInput("b")
	le := c.AddInput("le")

	// Deep datapath stage (all logic before its latches).
	g1 := c.AddGate("g1", seqver.OpXor, a, b)
	g2 := c.AddGate("g2", seqver.OpNand, g1, a)
	g3 := c.AddGate("g3", seqver.OpNot, g2)
	g4 := c.AddGate("g4", seqver.OpOr, g3, b)
	g5 := c.AddGate("g5", seqver.OpXor, g4, g1)
	l1 := c.AddLatch("l1", g5)
	l2 := c.AddLatch("l2", l1)

	// Load-enabled capture bank around shallow logic.
	e1 := c.AddEnabledLatch("e1", a, le)
	e2 := c.AddEnabledLatch("e2", b, le)
	h := c.AddGate("h", seqver.OpAnd, e1, e2)

	c.AddOutput("o", c.AddGate("mix", seqver.OpXor, l2, h))
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
