// Threevalued: the Figure 1 story. Conservative three-valued simulation
// cannot correlate X values, so it reports the two circuits below as
// different at power-up; the paper's exact 3-valued equivalence (and the
// CBF reduction that decides it) proves them equal. This is precisely
// why CBF-based verification admits more sequential optimization than
// X-based simulation sign-off.
package main

import (
	"fmt"
	"log"

	"seqver"
	"seqver/internal/sim"
)

func main() {
	// Circuit (a): two latches fed from the same signal, combined so the
	// result is constant regardless of the (shared) latched value:
	// o = L1 XOR L2 where both latches load the same input.
	ca := seqver.NewCircuit("fig1a")
	ia := ca.AddInput("i")
	l1 := ca.AddLatch("l1", ia)
	l2 := ca.AddLatch("l2", ia)
	ca.AddOutput("o", ca.AddGate("o", seqver.OpXor, l1, l2))

	// Circuit (b): the constant the designer intended (the latch remains
	// only to keep the interfaces comparable; it is functionally dead).
	cb := seqver.NewCircuit("fig1b")
	ib := cb.AddInput("i")
	cb.AddLatch("lb", ib)
	zero := cb.AddGate("z", seqver.OpConst0)
	cb.AddOutput("o", zero)

	// Conservative 3-valued simulation at the power-up cycle: circuit
	// (a) reports X — the simulator carries one uncorrelated X per latch
	// and cannot see that both Xs are the SAME unknown. Circuit (b)
	// reports 0. An X-based sign-off flow flags a mismatch.
	sa, sb := sim.New(ca), sim.New(cb)
	outsA := sa.Run3([][]sim.Val3{{sim.V0}})
	outsB := sb.Run3([][]sim.Val3{{sim.V0}})
	fmt.Printf("3-valued simulation at power-up: (a) o=%v   (b) o=%v\n",
		outsA[0][0], outsB[0][0])
	if outsA[0][0] != sim.VX || outsB[0][0] != sim.V0 {
		log.Fatal("unexpected simulation outcome")
	}
	fmt.Println("  -> an X-based simulator flags a mismatch that is not real")

	// The paper's exact reading (which Figure 1 and Theorem 5.1 force):
	// a latch's power-up value is its data cone evaluated over the
	// pre-time-0 input history — exactly the CBF's free variables
	// i(t-k). Both latches of (a) hold i(t-1), so for EVERY history the
	// output is i(t-1) XOR i(t-1) = 0.
	for _, phantom := range []bool{false, true} {
		outs := sa.Run([][]bool{{phantom}, {true}}, sim.State{phantom, phantom})
		if outs[0][0] || outs[1][0] {
			log.Fatal("history-correlated run should output 0")
		}
	}
	fmt.Println("exact (history-correlated) semantics: (a) outputs 0 for every power-up history")

	// The CBF reduction decides the equivalence formally.
	rep, err := seqver.VerifyAcyclic(ca, cb, seqver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CBF verification: %v via %s in %v\n",
		rep.Result.Verdict, rep.Method, rep.Elapsed.Round(1e5))
	if rep.Result.Verdict != seqver.Equivalent {
		log.Fatal("threevalued: expected equivalence")
	}
}
