// Package seqver is a from-scratch Go implementation of the verification
// methodology of Ranjan, Singhal, Somenzi and Brayton, "Using
// Combinational Verification for Sequential Circuits" (UCB/ERL M97/77;
// DATE 1999): sequential equivalence checking of circuits optimized by
// arbitrary sequences of retiming and combinational synthesis, reduced
// to combinational equivalence through Clocked Boolean Functions (CBF)
// and Event-Driven Boolean Functions (EDBF).
//
// The package is a facade over the implementation packages:
//
//   - Circuit model and BLIF I/O       (internal/netlist)
//   - CBF / EDBF unrolling             (internal/cbf, internal/edbf)
//   - Feedback analysis and exposure   (internal/feedback, internal/unate)
//   - Retiming                         (internal/retime)
//   - Synthesis and technology mapping (internal/synth)
//   - Combinational equivalence        (internal/cec; BDD+SAT+AIG below)
//   - Symbolic traversal baseline      (internal/seqbdd)
//
// Quick start:
//
//	a, _ := seqver.ParseBLIF(r)               // golden design
//	prep, _ := seqver.Prepare(a, seqver.PrepareOptions{})
//	rt, _ := seqver.MinPeriodRetime(prep.Circuit)
//	opt, _ := seqver.Synthesize(rt.Circuit)
//	rep, _ := seqver.VerifyAcyclic(prep.Circuit, opt, seqver.Options{})
//	fmt.Println(rep.Result.Verdict)           // equivalent
package seqver

import (
	"context"
	"io"

	"seqver/internal/aig"
	"seqver/internal/cbf"
	"seqver/internal/cec"
	"seqver/internal/core"
	"seqver/internal/edbf"
	"seqver/internal/feedback"
	"seqver/internal/netlist"
	"seqver/internal/obs"
	"seqver/internal/retime"
	"seqver/internal/seqbdd"
	"seqver/internal/synth"
	"seqver/internal/unate"
)

// Version identifies the library/tool build; CLIs stamp it into JSON
// envelopes so archived results can be tied to the code that made them.
const Version = "0.6.0"

// Circuit is the sequential circuit model: combinational gates plus
// single-phase edge-triggered latches with optional load enables.
type Circuit = netlist.Circuit

// Node, Op, Kind, Cube re-export the circuit building blocks.
type (
	Node = netlist.Node
	Op   = netlist.Op
	Kind = netlist.Kind
	Cube = netlist.Cube
)

// Gate operators.
const (
	OpConst0 = netlist.OpConst0
	OpConst1 = netlist.OpConst1
	OpBuf    = netlist.OpBuf
	OpNot    = netlist.OpNot
	OpAnd    = netlist.OpAnd
	OpOr     = netlist.OpOr
	OpNand   = netlist.OpNand
	OpNor    = netlist.OpNor
	OpXor    = netlist.OpXor
	OpXnor   = netlist.OpXnor
	OpMux    = netlist.OpMux
	OpTable  = netlist.OpTable
)

// NoEnable marks a regular latch.
const NoEnable = netlist.NoEnable

// NewCircuit returns an empty circuit with the given model name.
func NewCircuit(name string) *Circuit { return netlist.New(name) }

// ParseBLIF reads a circuit in the BLIF dialect (see internal/netlist
// for the supported constructs, including the "le" load-enable latch
// extension).
func ParseBLIF(r io.Reader) (*Circuit, error) { return netlist.ParseBLIF(r) }

// WriteBLIF writes the circuit in the same dialect.
func WriteBLIF(w io.Writer, c *Circuit) error { return netlist.WriteBLIF(w, c) }

// Preparation (Figure 19 step 1: A -> B).

// PrepareOptions configures feedback-constraint satisfaction.
type PrepareOptions = core.PrepareOptions

// PrepareResult is the modified circuit with its exposure report.
type PrepareResult = core.PrepareResult

// Prepare breaks every latch feedback path by minimal exposure
// (optionally re-modeling positive-unate self-loops as load-enabled
// latches first), yielding a circuit on which CBF/EDBF verification and
// unconstrained retiming+synthesis are valid.
func Prepare(c *Circuit, opt PrepareOptions) (*PrepareResult, error) {
	return core.Prepare(c, opt)
}

// PrepareCtx is Prepare under the context's tracer: the unate
// re-modeling and feedback-breaking phases appear as spans when a
// Tracer is attached with WithTracer (see the Tracing section below).
func PrepareCtx(ctx context.Context, c *Circuit, opt PrepareOptions) (*PrepareResult, error) {
	return core.PrepareCtx(ctx, c, opt)
}

// Verification (Figure 19 steps H, J, and the equivalence check).

// Options configures verification.
type Options = core.Options

// Report is a verification outcome.
type Report = core.Report

// CECOptions tunes the combinational engine ("hybrid", "sat", "bdd",
// "portfolio") including the wall-clock Budget.
type CECOptions = cec.Options

// CECResult is the combinational checker's verdict and diagnostics.
type CECResult = cec.Result

// CECStats is the engine's per-stage observability record (simulation,
// fraig, SAT worker pool); see cec.Stats.
type CECStats = cec.Stats

// Verdicts.
const (
	Equivalent   = cec.Equivalent
	Inequivalent = cec.Inequivalent
	Undecided    = cec.Undecided
)

// VerifyAcyclic checks exact 3-valued sequential equivalence of two
// feedback-free circuits via CBF (regular latches; complete by
// Theorem 5.1) or EDBF (load-enabled latches; conservative,
// Theorem 5.2).
func VerifyAcyclic(c1, c2 *Circuit, opt Options) (*Report, error) {
	return core.VerifyAcyclic(c1, c2, opt)
}

// VerifyAcyclicCtx is VerifyAcyclic under cooperative cancellation: the
// context and Options.CEC.Budget bound the equivalence check's wall
// clock (whichever deadline is tighter wins), and exhaustion degrades
// the verdict to Undecided with the unresolved outputs listed in
// Report.Result.UndecidedOutputs — never a hang or an error.
func VerifyAcyclicCtx(ctx context.Context, c1, c2 *Circuit, opt Options) (*Report, error) {
	return core.VerifyAcyclicCtx(ctx, c1, c2, opt)
}

// Verify prepares the first circuit, mirrors the exposure onto the
// second by latch name, and runs VerifyAcyclic.
func Verify(c1, c2 *Circuit, prep PrepareOptions, opt Options) (*Report, error) {
	return core.Verify(c1, c2, prep, opt)
}

// VerifyCtx is Verify under cooperative cancellation (see
// VerifyAcyclicCtx for the budget semantics).
func VerifyCtx(ctx context.Context, c1, c2 *Circuit, prep PrepareOptions, opt Options) (*Report, error) {
	return core.VerifyCtx(ctx, c1, c2, prep, opt)
}

// MiterHash returns the canonical content address of a combinational
// comparison: a structural hash of the joint miter AIG, invariant to
// node numbering, declaration order, and input naming differences that
// don't change the logic. Structurally identical pairs — however their
// BLIF was written — hash equal. The seqverd daemon keys its result
// cache with it; only decided verdicts may be cached under it (an
// undecided verdict is budget-dependent, not a property of the miter).
func MiterHash(c1, c2 *Circuit) (string, error) { return cec.MiterHash(c1, c2) }

// CheckCombinational exposes the raw combinational equivalence checker
// (name-aligned inputs/outputs).
func CheckCombinational(c1, c2 *Circuit, opt CECOptions) (*CECResult, error) {
	return cec.Check(c1, c2, opt)
}

// CheckCombinationalCtx is CheckCombinational under cooperative
// cancellation and the Options.Budget wall-clock bound.
func CheckCombinationalCtx(ctx context.Context, c1, c2 *Circuit, opt CECOptions) (*CECResult, error) {
	return cec.CheckCtx(ctx, c1, c2, opt)
}

// Replay is a concrete distinguishing input sequence reconstructed from
// a CBF counterexample.
type Replay = core.Replay

// ReplayCounterexample converts an Inequivalent verdict's counterexample
// (CBF path) into an input sequence and the cycle/output where the two
// circuits diverge, validated by simulation.
func ReplayCounterexample(c1, c2 *Circuit, cex map[string]bool) (*Replay, error) {
	return core.ReplayCounterexample(c1, c2, cex)
}

// Unrolling primitives (Figures 7, 8, 18).

// UnrollCBF materializes the Clocked Boolean Function of an acyclic
// regular-latch circuit as a combinational circuit with inputs "a@k".
func UnrollCBF(c *Circuit) (*Circuit, error) { return cbf.Unroll(c) }

// SequentialDepth returns the (topological) sequential depth.
func SequentialDepth(c *Circuit) (int, error) { return cbf.SequentialDepth(c) }

// EDBFContext aligns event identities across the two unrollings of a
// comparison.
type EDBFContext = edbf.Ctx

// NewEDBFContext returns a fresh shared event context.
func NewEDBFContext() *EDBFContext { return edbf.NewCtx() }

// Optimization substrates (Figure 19 steps B -> C/E).

// RetimeResult reports a retiming outcome.
type RetimeResult = retime.Result

// MinPeriodRetime retimes to the minimum feasible clock period
// (Leiserson-Saxe FEAS, unit delay model).
func MinPeriodRetime(c *Circuit) (*RetimeResult, error) { return retime.MinPeriod(c) }

// MinAreaRetime minimizes the (fanout-shared) latch count subject to a
// period bound.
func MinAreaRetime(c *Circuit, period int) (*RetimeResult, error) {
	return retime.ConstrainedMinArea(c, period)
}

// ClockPeriod reports the current unit-delay clock period.
func ClockPeriod(c *Circuit) (int, error) { return retime.Period(c) }

// MinPeriodRetimeMulti retimes a circuit with multiple latch classes
// (per-class Legl-style passes until the period stops improving). Class
// enables must be named primary inputs or constants.
func MinPeriodRetimeMulti(c *Circuit) (*RetimeResult, error) {
	return retime.MinPeriodMulti(c)
}

// MinAreaRetimeMulti minimizes latch count across classes subject to a
// period bound.
func MinAreaRetimeMulti(c *Circuit, period int) (*RetimeResult, error) {
	return retime.ConstrainedMinAreaMulti(c, period)
}

// SynthOptions configures the combinational-synthesis script.
type SynthOptions = synth.Options

// Synthesize runs the script.delay substitute (sweep + SAT-sweeping +
// balancing) with latch positions fixed.
func Synthesize(c *Circuit) (*Circuit, error) {
	return synth.Optimize(c, synth.DefaultScript())
}

// SynthesizeWith runs the script with explicit options.
func SynthesizeWith(c *Circuit, opt SynthOptions) (*Circuit, error) {
	return synth.Optimize(c, opt)
}

// MapReport summarizes a technology-mapped circuit (INV/NAND2/NOR2
// library, unit delay, fanout <= 4).
type MapReport = synth.MapReport

// TechMap maps the combinational logic onto the reduced cell library.
func TechMap(c *Circuit) (*Circuit, MapReport, error) { return synth.TechMap(c) }

// SimplifyTables runs two-level (espresso-style) minimization on every
// table gate's cover.
func SimplifyTables(c *Circuit) *Circuit { return synth.SimplifyTables(c) }

// WriteVerilog emits a mapped circuit as structural gate-level Verilog.
func WriteVerilog(w io.Writer, c *Circuit) error { return synth.WriteVerilog(w, c) }

// WriteAiger emits a combinational circuit (e.g. a CBF unrolling) in
// ASCII AIGER format; ParseAiger reads one back.
func WriteAiger(w io.Writer, c *Circuit) error {
	a, err := aig.FromCircuit(c)
	if err != nil {
		return err
	}
	return aig.WriteAiger(w, aig.Compact(a))
}

// ParseAiger reads an ASCII AIGER file as a combinational circuit.
func ParseAiger(r io.Reader) (*Circuit, error) {
	a, err := aig.ParseAiger(r)
	if err != nil {
		return nil, err
	}
	return a.ToCircuit("aiger"), nil
}

// Feedback analysis (Sections 6, 7.1).

// ExposeLatches cuts the named latches into pseudo PI/PO pairs.
func ExposeLatches(c *Circuit, names []string) (*Circuit, error) {
	ids := make([]int, 0, len(names))
	for _, n := range names {
		id := c.Lookup(n)
		if id < 0 {
			return nil, &MissingLatchError{Name: n}
		}
		ids = append(ids, id)
	}
	return feedback.Expose(c, ids)
}

// MissingLatchError reports an unknown latch name passed to
// ExposeLatches.
type MissingLatchError struct{ Name string }

func (e *MissingLatchError) Error() string {
	return "seqver: unknown latch " + e.Name
}

// SelfLoopReport classifies a feedback latch (Section 6).
type SelfLoopReport = unate.SelfLoopReport

// AnalyzeSelfLoops reports, per feedback latch, whether the Lemma 6.1
// enabled-latch re-modeling applies.
func AnalyzeSelfLoops(c *Circuit) ([]SelfLoopReport, error) {
	return unate.AnalyzeSelfLoops(c)
}

// Tracing (zero-dependency observability; see internal/obs and
// DESIGN.md §10). A Tracer rides the context passed to the *Ctx entry
// points; without one every instrumentation site costs a single nil
// check and allocates nothing.

// Tracer fans span/counter events out to its sinks.
type Tracer = obs.Tracer

// TraceSink consumes trace events (JSONL stream, Chrome trace,
// progress renderer, in-memory summary).
type TraceSink = obs.Sink

// NewTracer returns a tracer emitting to the given sinks.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.New(sinks...) }

// WithTracer attaches a tracer to a context; pass the result to
// VerifyCtx / VerifyAcyclicCtx / CheckCombinationalCtx / PrepareCtx.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// NewJSONLTraceSink streams one JSON event object per line to w.
func NewJSONLTraceSink(w io.Writer) TraceSink { return obs.NewJSONLSink(w) }

// NewChromeTraceSink buffers events and, on Close, writes a Chrome
// trace_event JSON file loadable in chrome://tracing or Perfetto.
func NewChromeTraceSink(w io.WriteCloser) TraceSink { return obs.NewChromeSink(w) }

// NewProgressTraceSink renders coarse phase progress and throttled
// metric rates as human-readable lines (intended for stderr).
func NewProgressTraceSink(w io.Writer) TraceSink { return obs.NewProgressSink(w) }

// Baseline (Section 2).

// TraversalOptions bounds the BDD reachability baseline.
type TraversalOptions = seqbdd.Options

// TraversalResult is the baseline's outcome.
type TraversalResult = seqbdd.Result

// CheckByTraversal runs the classical product-machine symbolic
// reachability check (reset equivalence from the all-zero states) — the
// baseline whose capacity cliff motivates the paper.
func CheckByTraversal(c1, c2 *Circuit, opt TraversalOptions) (*TraversalResult, error) {
	return seqbdd.CheckResetEquivalence(c1, c2, opt)
}
