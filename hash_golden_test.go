package seqver_test

import (
	"testing"

	"seqver"
	"seqver/internal/bench"
)

// TestMiterHashGoldenS3384 pins the content address of a fixed
// verification problem: the prepared s3384 corpus circuit, CBF-unrolled
// and mitered against itself. The constant is the daemon's cache key
// for this problem; a change here means every persistent cache entry in
// the wild silently misses after an upgrade. That can be a legitimate
// cost (the hash function or the pipeline changed semantics), but it
// must be a deliberate one — update the constant only with a note in
// the commit explaining why old cache entries must be invalidated.
func TestMiterHashGoldenS3384(t *testing.T) {
	const want = "bca2b189e6d692cce23b0c3952293c7a"

	var spec bench.Spec
	for _, sp := range bench.Table1Specs {
		if sp.Name == "s3384" {
			spec = sp
		}
	}
	if spec.Name == "" {
		t.Fatal("s3384 missing from bench.Table1Specs")
	}
	c := bench.Generate(spec)
	prep, err := seqver.Prepare(c, seqver.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := seqver.UnrollCBF(prep.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := seqver.MiterHash(u, u)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("s3384 miter hash = %s, want %s (cache keys of deployed daemons change!)", got, want)
	}
}
