package seqver_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqver"
	"seqver/internal/bench"
	"seqver/internal/sim"
)

func loadBLIF(t *testing.T, name string) *seqver.Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := seqver.ParseBLIF(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBLIFCorpusEquivalence(t *testing.T) {
	golden := loadBLIF(t, "golden.blif")
	revised := loadBLIF(t, "revised.blif")
	buggy := loadBLIF(t, "buggy.blif")

	rep, err := seqver.VerifyAcyclic(golden, revised, seqver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != seqver.Equivalent {
		t.Fatalf("golden vs revised: %v", rep.Result.Verdict)
	}

	rep, err = seqver.VerifyAcyclic(golden, buggy, seqver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != seqver.Inequivalent {
		t.Fatalf("golden vs buggy: %v", rep.Result.Verdict)
	}
	replay, err := seqver.ReplayCounterexample(golden, buggy, rep.Result.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Output != "o" || replay.Got1 == replay.Got2 {
		t.Fatalf("replay = %+v", replay)
	}
}

func TestFacadeBLIFRoundTrip(t *testing.T) {
	c := loadBLIF(t, "golden.blif")
	var buf bytes.Buffer
	if err := seqver.WriteBLIF(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := seqver.ParseBLIF(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := seqver.VerifyAcyclic(c, d, seqver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != seqver.Equivalent {
		t.Fatal("round trip not equivalent")
	}
}

func TestFacadeFullFlowOnGeneratedCircuit(t *testing.T) {
	a := bench.Generate(bench.Spec{Name: "facade", Latches: 24, FeedbackFrac: 0.4})
	prep, err := seqver.Prepare(a, seqver.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Exposed) == 0 {
		t.Fatal("expected exposure")
	}
	rt, err := seqver.MinPeriodRetime(prep.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := seqver.Synthesize(rt.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	mapped, mrep, err := seqver.TechMap(opt)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Area <= 0 {
		t.Fatalf("map report %+v", mrep)
	}
	rep, err := seqver.VerifyAcyclic(prep.Circuit, mapped, seqver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != seqver.Equivalent {
		t.Fatalf("verdict %v at %s", rep.Result.Verdict, rep.Result.FailingOutput)
	}
}

func TestFacadeVerifyCyclic(t *testing.T) {
	a := bench.Generate(bench.Spec{Name: "cyc", Latches: 16, FeedbackFrac: 0.5})
	opt, err := seqver.Synthesize(a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := seqver.Verify(a, opt, seqver.PrepareOptions{}, seqver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Verdict != seqver.Equivalent {
		t.Fatalf("verdict %v", rep.Result.Verdict)
	}
}

func TestFacadeTraversalBaseline(t *testing.T) {
	a := bench.Generate(bench.Spec{Name: "trav", Latches: 6, FeedbackFrac: 0})
	res, err := seqver.CheckByTraversal(a, a.Clone(), seqver.TraversalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.String() != "equivalent" {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestFacadeExposeLatches(t *testing.T) {
	a := bench.Generate(bench.Spec{Name: "expose", Latches: 10, FeedbackFrac: 0.5})
	name := a.Node(a.Latches[0]).Name
	cut, err := seqver.ExposeLatches(a, []string{name})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Lookup(name) < 0 {
		t.Fatal("exposed pseudo-input missing")
	}
	if _, err := seqver.ExposeLatches(a, []string{"no-such-latch"}); err == nil {
		t.Fatal("expected MissingLatchError")
	} else if _, ok := err.(*seqver.MissingLatchError); !ok {
		t.Fatalf("wrong error type: %T", err)
	}
}

func TestFacadeAnalyzeSelfLoops(t *testing.T) {
	a := bench.Generate(bench.Spec{Name: "loops", Latches: 12, FeedbackFrac: 0.5})
	reps, err := seqver.AnalyzeSelfLoops(a)
	if err != nil {
		t.Fatal(err)
	}
	unate := 0
	for _, r := range reps {
		if r.Unate {
			unate++
		}
	}
	if unate == 0 {
		t.Fatal("conditional-update latches should be positive unate")
	}
}

func TestFacadeOptimizationPreservesBehaviourOracle(t *testing.T) {
	// Independent oracle cross-check of the whole public-API flow.
	rng := rand.New(rand.NewSource(233))
	a := bench.Generate(bench.Spec{Name: "oracle", Latches: 10, FeedbackFrac: 0.3})
	prep, err := seqver.Prepare(a, seqver.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := seqver.MinPeriodRetime(prep.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := seqver.Synthesize(rt.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	eq, witness := sim.HistoryEquivalent(prep.Circuit, opt, 10, 6, rng)
	if !eq {
		t.Fatalf("oracle disagrees with flow; witness %v", witness)
	}
}
