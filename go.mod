module seqver

go 1.22
